package logger

import (
	"slices"
	"time"

	"lbrm/internal/obs"
	"lbrm/internal/transport"
	"lbrm/internal/vtime"
	"lbrm/internal/wire"
)

// SecondaryConfig configures a site's secondary logging server.
type SecondaryConfig struct {
	// Group is the multicast group to log.
	Group wire.GroupID
	// Primary is the primary logging server's address. It may be updated
	// at runtime by a TypePrimaryRedirect.
	Primary transport.Addr
	// Retention bounds the local log.
	Retention Retention
	// RespondToAckerSelection enables Designated Acker duty (§2.3). On by
	// default (disable for the pre-statistical-ack baseline).
	DisableAcking bool
	// DisableDiscovery stops the logger answering discovery queries.
	DisableDiscovery bool
	// NackDelay aggregates gap discoveries before one NACK goes to the
	// primary. It also gives a source re-multicast (statistical ack) a
	// chance to repair the loss first: §2.3.2 recommends waiting until
	// t_wait − h_min after the heartbeat that revealed the loss.
	NackDelay time.Duration
	// RequestTimeout is the retry interval for unanswered NACKs to the
	// primary.
	RequestTimeout time.Duration
	// MaxRetries bounds NACK retries per fetch episode.
	MaxRetries int
	// RemcastThreshold is the number of distinct local requesters for the
	// same packet within RemcastWindow that triggers a site-scoped
	// re-multicast instead of unicasts (§2.2.1).
	RemcastThreshold int
	// RemcastWindow is the counting window for RemcastThreshold.
	RemcastWindow time.Duration
	// RecoveryWindow caps how far behind the stream head the logger will
	// backfill (default 4096 sequence numbers); falling further behind
	// skips ahead, like a fresh late join. Bounds state and the work a
	// forged sequence number can cause.
	RecoveryWindow uint64
	// RemcastTTL is the multicast scope for re-multicast repairs
	// (default transport.TTLSite). A logger serving a wider tier — e.g. a
	// region logger in a multi-level hierarchy (§7) — must widen it so its
	// repairs reach its clients.
	RemcastTTL int
	// Tier is this logger's global tier in the logger tree, counted from
	// the leaf: 0 = site secondary (default), 1 = regional, up to the
	// primary at the tree depth. Tier > 0 loggers announce themselves with
	// a TypeReparent on Start so re-homed children can converge back.
	Tier int
	// Parents is the upward escalation chain of intermediate parents:
	// Parents[0] is the immediate parent (tier Tier+1), Parents[1] the
	// next tier up, and so on. Primary is always the final escalation
	// target (appended to the chain unless it is already last). Empty
	// Parents keeps the flat design: every fetch goes to Primary.
	Parents []transport.Addr
	// Siblings are alternate parents at the immediate parent's tier
	// (Parents[0]'s siblings): when the parent stays dead through
	// MaxRetries the logger re-homes to them before escalating a tier.
	Siblings []transport.Addr
	// TreeEpoch is the tree-configuration generation this logger announces
	// with (default 1). A restarted tier node must boot with a higher
	// TreeEpoch than its previous life so children can fence replayed
	// announcements.
	TreeEpoch uint32
	// AnnounceTTL is the multicast scope of TypeReparent announcements
	// (default transport.TTLRegion — an announcement must reach the
	// announcer's children but need not cross the whole fleet).
	AnnounceTTL int
	// MakespanRepair enables makespan-aware repair scheduling: locally
	// served NACKs are batched per requesting child for one NackDelay and
	// released largest-demand-first (see ScheduleRepairs), minimizing
	// fleet-wide recovery makespan when a tier rebuilds after a fault.
	// Off by default: repairs are served FIFO as each NACK arrives.
	MakespanRepair bool
	// DiscoveryJitter is the maximum random delay before answering a
	// discovery query (avoids reply implosion when several loggers hear
	// the same query).
	DiscoveryJitter time.Duration
	// Obs receives metrics and trace events (nil = uninstrumented; the
	// datapath stays zero-allocation either way, see DESIGN.md §9).
	Obs *obs.Sink
}

// withDefaults fills zero fields.
func (c SecondaryConfig) withDefaults() SecondaryConfig {
	if c.NackDelay == 0 {
		c.NackDelay = 20 * time.Millisecond
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 500 * time.Millisecond
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 8
	}
	if c.RemcastThreshold == 0 {
		c.RemcastThreshold = 3
	}
	if c.RemcastWindow == 0 {
		c.RemcastWindow = 100 * time.Millisecond
	}
	if c.RemcastTTL == 0 {
		c.RemcastTTL = transport.TTLSite
	}
	if c.RecoveryWindow == 0 {
		c.RecoveryWindow = 4096
	}
	if c.DiscoveryJitter == 0 {
		c.DiscoveryJitter = 10 * time.Millisecond
	}
	if c.Tier < 0 {
		c.Tier = 0
	}
	if c.Tier > wire.MaxTier {
		c.Tier = wire.MaxTier
	}
	if c.TreeEpoch == 0 {
		c.TreeEpoch = 1
	}
	if c.AnnounceTTL == 0 {
		c.AnnounceTTL = transport.TTLRegion
	}
	return c
}

// parentCand is one entry of the logger-wide escalation chain: a fetch
// target and its global tier (stamped on upward NACKs).
type parentCand struct {
	addr transport.Addr
	tier int
}

// candidates builds the escalation chain in re-home order: the immediate
// parent first, then its siblings (same tier), then each higher parent,
// with the primary always last.
func (c SecondaryConfig) candidates() []parentCand {
	var out []parentCand
	if len(c.Parents) > 0 {
		out = append(out, parentCand{c.Parents[0], c.Tier + 1})
		for _, sib := range c.Siblings {
			out = append(out, parentCand{sib, c.Tier + 1})
		}
		for i, p := range c.Parents[1:] {
			out = append(out, parentCand{p, c.Tier + 2 + i})
		}
	}
	if c.Primary != nil && (len(out) == 0 || out[len(out)-1].addr != c.Primary) {
		out = append(out, parentCand{c.Primary, c.Tier + 1 + len(c.Parents)})
	}
	return out
}

// SecondaryStats counts a secondary logger's protocol activity.
type SecondaryStats struct {
	PacketsLogged     uint64 // data/retrans stored
	Duplicates        uint64
	NacksFromClients  uint64 // NACK packets received from local receivers
	SeqsRequested     uint64 // sequence numbers requested by local receivers
	RetransUnicast    uint64 // retransmissions served point-to-point
	Remulticasts      uint64 // site-scoped multicast repairs
	NacksToPrimary    uint64 // NACK packets sent up to the primary
	FetchesSatisfied  uint64 // log holes filled by an upstream repair (retrans/LogSync)
	FetchesAbandoned  uint64
	AckerSelections   uint64 // epochs this logger volunteered for
	AcksSent          uint64
	ProbeResponses    uint64
	DiscoveryReplies  uint64
	RedirectsFollowed uint64
	StaleRedirects    uint64 // redirects fenced by the primary epoch
	SkippedAhead      uint64 // recovery-window skips (fell too far behind)
	Rehomes           uint64 // parent changes after exhausting retries
	ReparentsFollowed uint64 // TypeReparent announcements adopted
	StaleReparents    uint64 // TypeReparent announcements fenced as stale
	Malformed         uint64
}

// Secondary is a site secondary logging server (§2.2.1): it subscribes to
// the data group, logs every packet, serves local retransmission requests,
// and recovers its own losses from the primary so that only one NACK per
// site crosses the tail circuit.
type Secondary struct {
	cfg     SecondaryConfig
	env     transport.Env
	streams map[StreamKey]*secStream
	stopped bool
	// last is a one-entry stream cache: traffic arrives in long runs from
	// the same stream, so most lookups skip the map hash.
	last *secStream
	// scratch is the reusable wire-encoding buffer (bindings copy).
	scratch []byte
	// dec recycles NACK range storage across decodes.
	dec wire.Decoder
	// ackPkt is the reusable Designated-Acker ACK: built in place per data
	// packet so the steady-state ack path performs zero allocations.
	ackPkt wire.Packet
	// rangeScratch/seqScratch/trackScratch back missing()'s working
	// slices between calls; their contents are dead once the NACK is
	// marshalled.
	rangeScratch []wire.SeqRange
	seqScratch   []uint64
	trackScratch []wire.SeqRange
	// waiterPool recycles the per-seq waiter lists of pendingReq.
	waiterPool [][]transport.Addr
	// reqPool recycles reqWindow entries; each keeps its requester map
	// and expiry timer across episodes (the timer is re-armed with Reset,
	// so steady-state request-window churn allocates nothing).
	reqPool []*reqCount
	// Logger-wide tree state: the escalation chain, the current parent
	// slot, the announced tree epoch, the highest primary epoch observed
	// on any stream (fences reparent announcements), and the highest tree
	// epoch adopted per announcer tier.
	cands        []parentCand
	slot         int
	treeEpoch    uint32
	priEpochHigh uint32
	tierEpochs   [wire.MaxTier + 1]uint32
	// repairQ batches locally-served NACK demand per child while
	// MakespanRepair is on; released largest-demand-first on repairTimer.
	repairQ     []RepairBatch
	repairTimer vtime.Timer
	stats       SecondaryStats
	// mx caches the preregistered metric handles (all nil-safe): resolved
	// once at construction so the hot path is atomic adds only.
	mx secondaryMetrics
}

// secondaryMetrics holds the secondary's preregistered observability
// handles. Every field no-ops when the sink is nil.
type secondaryMetrics struct {
	sink             *obs.Sink
	tx               *obs.ClassCounters
	logged           *obs.Counter
	duplicates       *obs.Counter
	acksSent         *obs.Counter
	nacksFromClients *obs.Counter
	nacksToPrimary   *obs.Counter
	retransUnicast   *obs.Counter
	remulticasts     *obs.Counter
	abandoned        *obs.Counter
	skippedAhead     *obs.Counter
	staleRedirects   *obs.Counter
	rehomes          *obs.Counter
	reparents        *obs.Counter
	staleReparents   *obs.Counter
	primaryEpoch     *obs.Gauge
	parentTier       *obs.Gauge
	nackRanges       *obs.Histogram
}

func newSecondaryMetrics(sink *obs.Sink) secondaryMetrics {
	return secondaryMetrics{
		sink:       sink,
		tx:         sink.Classes("secondary.tx", wire.TrafficClassNames()),
		logged:     sink.Counter("secondary.logged"),
		duplicates: sink.Counter("secondary.duplicates"),
		acksSent:   sink.Counter("secondary.acks_sent"),
		// nacks_from_clients is the site's inbound repair demand — the
		// health engine's per-site crying-baby signal (DESIGN.md §15).
		nacksFromClients: sink.Counter("secondary.nacks_from_clients"),
		nacksToPrimary:   sink.Counter("secondary.nacks_to_primary"),
		retransUnicast:   sink.Counter("secondary.retrans_unicast"),
		remulticasts:     sink.Counter("secondary.remulticasts"),
		abandoned:        sink.Counter("secondary.fetches_abandoned"),
		skippedAhead:     sink.Counter("secondary.skipped_ahead"),
		staleRedirects:   sink.Counter("secondary.fence.stale_redirects"),
		rehomes:          sink.Counter("secondary.tree.rehomes"),
		reparents:        sink.Counter("secondary.tree.reparents"),
		staleReparents:   sink.Counter("secondary.tree.stale_reparents"),
		primaryEpoch:     sink.Gauge("secondary.primary_epoch"),
		parentTier:       sink.Gauge("secondary.tree.parent_tier"),
		nackRanges:       sink.Histogram("secondary.nack.ranges", []uint64{1, 2, 4, 8, 16, 32}),
	}
}

type secStream struct {
	key     StreamKey
	store   *Store
	source  transport.Addr // learned from the stream's data packets
	primary transport.Addr
	// fetchTier is the global tier of the stream's current fetch target
	// (stamped on upward NACKs; moves with the logger-wide parent slot).
	fetchTier int
	// primaryEpoch is the highest primary epoch observed (heartbeats and
	// redirects carry it); redirects stamped lower are from a fenced, stale
	// primary and must not move the fetch target.
	primaryEpoch uint32
	// hbHigh is the highest sequence number referenced by a heartbeat.
	hbHigh uint64
	// pendingReq holds local receivers waiting for packets we don't have,
	// in arrival order (deterministic service order for the trace hash).
	pendingReq map[uint64][]transport.Addr
	// fetch state toward the primary.
	nackTimer  vtime.Timer
	retryTimer vtime.Timer
	retries    int
	// gaveUpBelow suppresses re-fetching sequence numbers we already
	// abandoned.
	gaveUpBelow uint64
	// recent request counts per seq for the re-multicast decision.
	reqWindow map[uint64]*reqCount
	// acker state.
	isAcker    bool
	ackerEpoch uint32
}

type reqCount struct {
	requesters  map[transport.Addr]bool
	remulticast bool
	expire      vtime.Timer
	// Pool plumbing: the expiry callback is created once per reqCount and
	// reads the episode's identity from these fields, so re-arming the
	// window for a new seq is a Reset, not an allocation. armed guards
	// against a stale timer firing after the entry was recycled.
	seq   uint64
	st    *secStream
	armed bool
}

// NewSecondary returns a secondary logger for cfg.
func NewSecondary(cfg SecondaryConfig) *Secondary {
	cfg = cfg.withDefaults()
	s := &Secondary{
		cfg:       cfg,
		streams:   make(map[StreamKey]*secStream),
		cands:     cfg.candidates(),
		treeEpoch: cfg.TreeEpoch,
		mx:        newSecondaryMetrics(cfg.Obs),
	}
	s.mx.parentTier.Set(int64(s.currentParent().tier))
	return s
}

// currentParent returns the logger-wide escalation-chain entry fetches
// currently target. With an empty chain it returns a nil-addressed entry
// one tier up (fetches abandon immediately, as before).
func (s *Secondary) currentParent() parentCand {
	if s.slot < len(s.cands) {
		return s.cands[s.slot]
	}
	return parentCand{nil, s.cfg.Tier + 1}
}

// now returns the trace timestamp (0 before Start).
func (s *Secondary) now() int64 {
	if s.env == nil {
		return 0
	}
	return s.env.Now().UnixNano()
}

// Stats returns a snapshot of the logger's counters.
func (s *Secondary) Stats() SecondaryStats { return s.stats }

// Stop halts the logger's timers and packet processing and releases any
// disk spill files. Safe to call once.
func (s *Secondary) Stop() {
	s.stopped = true
	for _, st := range s.streams {
		st.store.Close()
	}
}

// after schedules fn guarded by the stopped flag.
func (s *Secondary) after(d time.Duration, fn func()) vtime.Timer {
	return s.env.AfterFunc(d, func() {
		if !s.stopped {
			fn()
		}
	})
}

// PrimaryTarget returns the stream's current fetch target and the highest
// primary epoch observed for it (for tests).
func (s *Secondary) PrimaryTarget(key StreamKey) (transport.Addr, uint32) {
	if st := s.streams[key]; st != nil {
		return st.primary, st.primaryEpoch
	}
	return nil, 0
}

// Store returns the log store for a stream (nil if the stream is unknown),
// for tests and tooling.
func (s *Secondary) Store(key StreamKey) *Store {
	if st := s.streams[key]; st != nil {
		return st.store
	}
	return nil
}

// Start implements transport.Handler.
func (s *Secondary) Start(env transport.Env) {
	s.env = env
	if err := env.Join(s.cfg.Group); err != nil {
		panic("logger: secondary failed to join group: " + err.Error())
	}
	if d := evictInterval(s.cfg.Retention); d > 0 {
		env.AfterFunc(d, s.evictTick)
	}
	// A tier node announces itself so children that re-homed while it was
	// down (or that booted first) converge back to it (§2.2 hierarchy).
	if s.cfg.Tier > 0 {
		p := wire.Packet{
			Type: wire.TypeReparent, Group: s.cfg.Group,
			TreeEpoch: s.treeEpoch, Epoch: s.priEpochHigh,
			Addr: env.LocalAddr().String(),
		}
		p.SetTier(s.cfg.Tier)
		s.multicast(&p, s.cfg.AnnounceTTL)
	}
}

// evictTick enforces age-based retention even on idle streams.
func (s *Secondary) evictTick() {
	now := s.env.Now()
	for _, st := range s.streams {
		st.store.EvictExpired(now)
	}
	s.after(evictInterval(s.cfg.Retention), s.evictTick)
}

// Recv implements transport.Handler.
func (s *Secondary) Recv(from transport.Addr, data []byte) {
	if s.stopped {
		return
	}
	var p wire.Packet
	// The shared Decoder recycles NACK range storage across packets:
	// p.Ranges is dead once this call returns, so the alias is safe.
	if err := s.dec.Unmarshal(data, &p); err != nil {
		s.stats.Malformed++
		return
	}
	if p.Group != s.cfg.Group {
		return
	}
	switch p.Type {
	case wire.TypeData, wire.TypeRetrans, wire.TypeLogSync:
		s.onData(from, &p)
	case wire.TypeHeartbeat:
		s.onHeartbeat(from, &p)
	case wire.TypeNack:
		s.onNack(from, &p)
	case wire.TypeAckerSelect:
		s.onAckerSelect(from, &p)
	case wire.TypeSizeProbe:
		s.onProbe(from, &p)
	case wire.TypeDiscoveryQuery:
		s.onDiscovery(from, &p)
	case wire.TypePrimaryRedirect:
		s.onRedirect(&p)
	case wire.TypeReparent:
		s.onReparent(&p)
	}
}

func (s *Secondary) stream(key StreamKey) *secStream {
	if st := s.last; st != nil && st.key == key {
		return st
	}
	st := s.streams[key]
	if st == nil {
		cand := s.currentParent()
		st = &secStream{
			key:        key,
			store:      NewStore(s.cfg.Retention),
			primary:    cand.addr,
			fetchTier:  cand.tier,
			pendingReq: make(map[uint64][]transport.Addr),
			reqWindow:  make(map[uint64]*reqCount),
		}
		s.streams[key] = st
	}
	s.last = st
	return st
}

// getWaiters takes a waiter list from the pool (or allocates one).
func (s *Secondary) getWaiters() []transport.Addr {
	if n := len(s.waiterPool); n > 0 {
		w := s.waiterPool[n-1]
		s.waiterPool = s.waiterPool[:n-1]
		return w
	}
	return make([]transport.Addr, 0, 1)
}

// putWaiters returns a waiter list to the pool once its seq is resolved.
func (s *Secondary) putWaiters(w []transport.Addr) {
	s.waiterPool = append(s.waiterPool, w[:0])
}

// getReqCount takes a request-window entry from the pool (or builds a
// fresh one, creating its expiry callback exactly once) and arms it for
// (st, seq). Recycled entries re-arm their existing timer with Reset, so
// the steady-state request window allocates nothing.
func (s *Secondary) getReqCount(st *secStream, seq uint64) *reqCount {
	var rc *reqCount
	if n := len(s.reqPool); n > 0 {
		rc = s.reqPool[n-1]
		s.reqPool = s.reqPool[:n-1]
		clear(rc.requesters)
		rc.remulticast = false
	} else {
		rc = &reqCount{requesters: make(map[transport.Addr]bool, 1)}
	}
	rc.st, rc.seq, rc.armed = st, seq, true
	if rc.expire == nil {
		rc.expire = s.after(s.cfg.RemcastWindow, func() { s.expireReq(rc) })
	} else {
		rc.expire.Reset(s.cfg.RemcastWindow)
	}
	return rc
}

// expireReq closes one request-counting window and recycles its entry.
func (s *Secondary) expireReq(rc *reqCount) {
	if !rc.armed {
		return
	}
	rc.armed = false
	delete(rc.st.reqWindow, rc.seq)
	rc.st = nil
	s.reqPool = append(s.reqPool, rc)
}

func (s *Secondary) onData(from transport.Addr, p *wire.Packet) {
	st := s.stream(KeyOf(p))
	if p.Type == wire.TypeData && p.Flags&wire.FlagFromLogger == 0 {
		st.source = from
	}
	// A late-joining secondary logs from here on; it does not backfill the
	// stream's entire history (receivers needing older packets are served
	// on demand via the primary).
	if p.Seq > 0 {
		st.store.SetBase(p.Seq - 1)
	}
	stored := st.store.Put(p.Seq, p.Payload, s.env.Now())
	if !stored {
		s.stats.Duplicates++
		s.mx.duplicates.Inc()
	} else {
		s.stats.PacketsLogged++
		s.mx.logged.Inc()
		if p.Type == wire.TypeRetrans || p.Type == wire.TypeLogSync {
			// A repair we logged filled a hole in our own log: the upward
			// fetch (or a parent's repair multicast) recovered it.
			s.stats.FetchesSatisfied++
		}
		// Designated Acker duty: acknowledge fresh data of our epoch.
		if st.isAcker && p.Type == wire.TypeData && p.Epoch == st.ackerEpoch && st.source != nil {
			s.ackPkt = wire.Packet{
				Type: wire.TypeAck, Source: p.Source, Group: p.Group,
				Seq: p.Seq, Epoch: p.Epoch,
			}
			s.send(st.source, &s.ackPkt)
			s.stats.AcksSent++
			s.mx.acksSent.Inc()
		}
	}
	// Satisfy any local receivers waiting on this packet. A packet that
	// arrived from the primary (a fetched retransmission or a LogSync)
	// makes the relayed repair a primary-callback recovery; anything else
	// (the original multicast, a source re-multicast) leaves it a local
	// serve from this logger's view.
	if waiters := st.pendingReq[p.Seq]; len(waiters) > 0 {
		delete(st.pendingReq, p.Seq)
		viaPrimary := p.Flags&wire.FlagViaPrimary != 0 || p.Type == wire.TypeLogSync
		s.serveWaiters(st, p.Seq, waiters, viaPrimary)
		s.putWaiters(waiters)
	}
	s.checkGaps(st)
}

func (s *Secondary) onHeartbeat(from transport.Addr, p *wire.Packet) {
	st := s.stream(KeyOf(p))
	st.source = from
	if p.PrimaryEpoch > st.primaryEpoch {
		s.mx.sink.Emit(s.now(), obs.KindEpochBump, uint64(st.primaryEpoch), uint64(p.PrimaryEpoch), 0)
		st.primaryEpoch = p.PrimaryEpoch
		s.mx.primaryEpoch.Set(int64(st.primaryEpoch))
	}
	if p.PrimaryEpoch > s.priEpochHigh {
		s.priEpochHigh = p.PrimaryEpoch
	}
	// First contact via heartbeat: adopt the current position, skipping
	// history.
	st.store.SetBase(p.Seq)
	if p.Seq > st.hbHigh {
		st.hbHigh = p.Seq
	}
	// A heartbeat carrying inline data doubles as a retransmission
	// (paper §7 extension).
	if p.Flags&wire.FlagInlineData != 0 && p.Seq > 0 {
		if st.store.Put(p.Seq, p.Payload, s.env.Now()) {
			s.stats.PacketsLogged++
			s.mx.logged.Inc()
		}
		if waiters := st.pendingReq[p.Seq]; len(waiters) > 0 {
			delete(st.pendingReq, p.Seq)
			s.serveWaiters(st, p.Seq, waiters, false)
			s.putWaiters(waiters)
		}
	}
	s.checkGaps(st)
}

// maxSeqsPerNack bounds the per-NACK work a client can demand.
const maxSeqsPerNack = 1024

func (s *Secondary) onNack(from transport.Addr, p *wire.Packet) {
	st := s.stream(KeyOf(p))
	s.stats.NacksFromClients++
	s.mx.nacksFromClients.Inc()
	budget := maxSeqsPerNack
	needFetch := false
	for _, r := range p.Ranges {
		for seq := r.From; seq <= r.To && budget > 0; seq++ {
			budget--
			s.stats.SeqsRequested++
			if st.store.Has(seq) {
				if s.cfg.MakespanRepair {
					s.queueRepair(st, seq, from)
				} else {
					s.serveLocal(st, seq, from)
				}
				continue
			}
			if st.store.Evicted(seq) {
				// Evicted by retention: we cannot serve it and fetching it
				// again is pointless (the primary applies its own
				// retention); the receiver's escalation path handles it.
				continue
			}
			w, ok := st.pendingReq[seq]
			if !ok {
				w = s.getWaiters()
			}
			if !slices.Contains(w, from) {
				w = append(w, from)
			}
			st.pendingReq[seq] = w
			needFetch = true
			// An explicit client request re-opens sequence numbers we had
			// given up on: the retry shows continued demand.
			if seq <= st.gaveUpBelow {
				st.gaveUpBelow = seq - 1
			}
		}
	}
	if needFetch {
		s.checkGaps(st)
	}
}

// serveLocal answers one locally-available retransmission request,
// deciding between unicast and site-scoped re-multicast based on recent
// demand (§2.2.1).
func (s *Secondary) serveLocal(st *secStream, seq uint64, from transport.Addr) {
	rc := st.reqWindow[seq]
	if rc == nil {
		rc = s.getReqCount(st, seq)
		st.reqWindow[seq] = rc
	}
	rc.requesters[from] = true
	if rc.remulticast {
		return // already re-multicast within this window; requester will hear it
	}
	if len(rc.requesters) >= s.cfg.RemcastThreshold {
		rc.remulticast = true
		s.retransmit(st, seq, nil, false)
		return
	}
	s.retransmit(st, seq, from, false)
}

// serveWaiters delivers a just-recovered packet to the receivers that
// asked for it. viaPrimary records whether the packet had to be fetched
// through the primary callback (§2.2.2) rather than found locally.
func (s *Secondary) serveWaiters(st *secStream, seq uint64, waiters []transport.Addr, viaPrimary bool) {
	if len(waiters) >= s.cfg.RemcastThreshold {
		s.retransmit(st, seq, nil, viaPrimary)
		return
	}
	for _, w := range waiters {
		s.retransmit(st, seq, w, viaPrimary)
	}
}

// retransmit sends the stored packet for seq to one receiver (unicast) or,
// with to == nil, re-multicasts it with site scope. viaPrimary stamps
// FlagViaPrimary so receivers attribute the repair to the primary-callback
// path.
func (s *Secondary) retransmit(st *secStream, seq uint64, to transport.Addr, viaPrimary bool) {
	payload, ok := st.store.Get(seq)
	if !ok {
		return
	}
	p := wire.Packet{
		Type: wire.TypeRetrans, Flags: wire.FlagRetransmission | wire.FlagFromLogger,
		Source: st.key.Source, Group: st.key.Group, Seq: seq, Payload: payload,
	}
	path := wire.PathLocal
	if viaPrimary {
		p.Flags |= wire.FlagViaPrimary
		path = wire.PathPrimaryCallback
	}
	if to == nil {
		s.multicast(&p, s.cfg.RemcastTTL)
		s.stats.Remulticasts++
		s.mx.remulticasts.Inc()
		s.mx.sink.EmitFlight(s.now(), obs.KindServe, seq, uint64(path), 1)
		return
	}
	s.send(to, &p)
	s.stats.RetransUnicast++
	s.mx.retransUnicast.Inc()
	s.mx.sink.EmitFlight(s.now(), obs.KindServe, seq, uint64(path), 0)
}

// clampWindow enforces RecoveryWindow: a logger that is hopelessly behind
// (or being fed forged sequence numbers) skips ahead instead of
// backfilling without bound.
func (s *Secondary) clampWindow(st *secStream) {
	hi := st.store.Highest()
	if st.hbHigh > hi {
		hi = st.hbHigh
	}
	contig := st.store.Contiguous()
	if hi <= contig+s.cfg.RecoveryWindow {
		return
	}
	skipTo := hi - s.cfg.RecoveryWindow
	s.mx.sink.Emit(s.now(), obs.KindSkipAhead, contig, skipTo, 0)
	st.store.Advance(skipTo)
	if skipTo > st.gaveUpBelow {
		st.gaveUpBelow = skipTo
	}
	for seq, w := range st.pendingReq {
		if seq <= skipTo {
			delete(st.pendingReq, seq)
			s.putWaiters(w)
		}
	}
	s.stats.SkippedAhead++
	s.mx.skippedAhead.Inc()
}

// checkGaps schedules a fetch from the primary when the local log has
// holes (either sequence gaps or heartbeat-revealed missing packets).
func (s *Secondary) checkGaps(st *secStream) {
	s.clampWindow(st)
	if st.nackTimer != nil || st.retryTimer != nil {
		return
	}
	// Fast path for the per-packet steady state: a contiguous log with no
	// waiting receivers has nothing to fetch, so skip building the range
	// list (missing sorts and appends) entirely.
	hi := st.store.Highest()
	if st.hbHigh > hi {
		hi = st.hbHigh
	}
	if len(st.pendingReq) == 0 && hi <= st.store.Contiguous() {
		return
	}
	if len(s.missing(st)) == 0 {
		return
	}
	st.nackTimer = s.after(s.cfg.NackDelay, func() {
		st.nackTimer = nil
		st.retries = 0
		s.fetchMissing(st)
	})
}

// missing returns what the stream should fetch from the primary: log gaps
// above the give-up watermark, plus packets local receivers explicitly
// asked for (including pre-join history below the base watermark). The
// returned slice is backed by the Secondary's scratch storage and is valid
// only until the next missing call.
func (s *Secondary) missing(st *secStream) []wire.SeqRange {
	hi := st.store.Highest()
	if st.hbHigh > hi {
		hi = st.hbHigh
	}
	out := s.rangeScratch[:0]
	s.trackScratch = st.store.AppendMissing(s.trackScratch[:0], hi, wire.MaxNackRanges)
	for _, r := range s.trackScratch {
		if r.To <= st.gaveUpBelow {
			continue
		}
		if r.From <= st.gaveUpBelow {
			r.From = st.gaveUpBelow + 1
		}
		out = append(out, r)
	}
	covered := func(seq uint64) bool {
		for _, r := range out {
			if r.Contains(seq) {
				return true
			}
		}
		return false
	}
	extra := s.seqScratch[:0]
	for seq := range st.pendingReq {
		if st.store.Has(seq) || st.store.Evicted(seq) || covered(seq) {
			continue
		}
		extra = append(extra, seq)
	}
	s.seqScratch = extra
	if len(extra) > 0 {
		slices.Sort(extra)
		for _, seq := range extra {
			if n := len(out); n > 0 && out[n-1].To+1 == seq {
				out[n-1].To = seq
				continue
			}
			out = append(out, wire.SeqRange{From: seq, To: seq})
		}
		slices.SortFunc(out, func(a, b wire.SeqRange) int {
			switch {
			case a.From < b.From:
				return -1
			case a.From > b.From:
				return 1
			}
			return 0
		})
	}
	if len(out) > wire.MaxNackRanges {
		out = out[:wire.MaxNackRanges]
	}
	s.rangeScratch = out
	return out
}

// fetchMissing sends one aggregated NACK to the primary and arms the retry
// timer.
func (s *Secondary) fetchMissing(st *secStream) {
	ranges := s.missing(st)
	if len(ranges) == 0 {
		st.retries = 0
		return
	}
	if st.retries >= s.cfg.MaxRetries {
		// The parent stayed dead through a full retry episode: degrade
		// gracefully by re-homing the whole logger to the next candidate
		// (a sibling of the parent, or the next tier up) and fire the
		// backfill fetch at it immediately. Only when the entire chain is
		// exhausted do we abandon.
		if !s.rehome() {
			s.abandon(st, ranges)
			return
		}
	}
	if st.primary == nil {
		// No parent known: abandon these waiters; receivers escalate on
		// their own timeout.
		s.abandon(st, ranges)
		return
	}
	st.retries++
	nack := wire.Packet{
		Type: wire.TypeNack, Source: st.key.Source, Group: st.key.Group,
		Ranges: ranges,
	}
	nack.SetTier(st.fetchTier)
	s.send(st.primary, &nack)
	s.stats.NacksToPrimary++
	s.mx.nacksToPrimary.Inc()
	s.mx.nackRanges.Observe(uint64(len(ranges)))
	if s.mx.sink != nil {
		// Flight recorder: the aggregated upward fetch is the NACK hop of
		// every covered seq's escalated chain; B carries the fetch-target
		// tier offset by NackTierFetch to keep it distinct from receiver
		// escalation phases.
		nowNS := s.now()
		for _, r := range ranges {
			for seq := r.From; seq <= r.To; seq++ {
				s.mx.sink.EmitFlight(nowNS, obs.KindNackSend, seq, uint64(obs.NackTierFetch+st.fetchTier), uint64(st.retries-1))
			}
		}
	}
	// Jittered exponential backoff: every site logger behind a healed
	// partition holds the same gaps; fixed-period retries would hit the
	// primary in synchronized waves (§2.2.2's correlated loss applies to
	// control traffic too).
	retry := transport.Backoff{Base: s.cfg.RequestTimeout}.Interval(st.retries-1, s.env.Rand())
	st.retryTimer = s.after(retry, func() {
		st.retryTimer = nil
		s.fetchMissing(st)
	})
}

// rehome advances the logger-wide parent slot to the next escalation-chain
// candidate and re-targets every stream at it: fetch targets move, retry
// budgets reset, and give-up watermarks reopen so the new parent is asked
// for everything still missing (the backfill). Returns false when the
// chain is exhausted.
func (s *Secondary) rehome() bool {
	if s.slot+1 >= len(s.cands) {
		return false
	}
	old := s.cands[s.slot]
	s.slot++
	cand := s.cands[s.slot]
	for _, st := range s.streams {
		st.primary = cand.addr
		st.fetchTier = cand.tier
		st.retries = 0
		st.gaveUpBelow = 0
	}
	s.stats.Rehomes++
	s.mx.rehomes.Inc()
	s.mx.parentTier.Set(int64(cand.tier))
	s.mx.sink.Emit(s.now(), obs.KindRehome, uint64(cand.tier), uint64(old.tier), uint64(s.slot))
	return true
}

// onReparent handles a tier node's (re)join announcement: if the announcer
// is an escalation-chain candidate closer to home than the current parent,
// adopt it (the healed node converges its re-homed children back). Two
// fences reject stale announcements: the per-tier tree epoch must be
// strictly newer than the last adopted for that tier, and a non-zero
// header Epoch must not be below the highest primary epoch observed.
func (s *Secondary) onReparent(p *wire.Packet) {
	addr, err := s.env.ParseAddr(p.Addr)
	if err != nil {
		s.stats.Malformed++
		return
	}
	t := p.Tier()
	if (p.Epoch != 0 && p.Epoch < s.priEpochHigh) || p.TreeEpoch <= s.tierEpochs[t] {
		s.stats.StaleReparents++
		s.mx.staleReparents.Inc()
		s.mx.sink.Emit(s.now(), obs.KindReparent, uint64(t), uint64(p.TreeEpoch), 0)
		return
	}
	s.tierEpochs[t] = p.TreeEpoch
	idx := -1
	for i, c := range s.cands {
		if c.tier == t && c.addr == addr {
			idx = i
			break
		}
	}
	if idx < 0 || idx >= s.slot {
		// Not one of our candidates (or not an improvement): the
		// announcement is fresh but changes nothing for this logger.
		return
	}
	s.slot = idx
	cand := s.cands[idx]
	for _, st := range s.streams {
		st.primary = cand.addr
		st.fetchTier = cand.tier
		st.retries = 0
		st.gaveUpBelow = 0
		// Re-target any in-flight fetch episode at the recovered parent
		// now rather than after a full backoff interval.
		if st.retryTimer != nil {
			st.retryTimer.Stop()
			st.retryTimer = nil
			s.fetchMissing(st)
		} else {
			s.checkGaps(st)
		}
	}
	s.stats.ReparentsFollowed++
	s.mx.reparents.Inc()
	s.mx.parentTier.Set(int64(cand.tier))
	s.mx.sink.Emit(s.now(), obs.KindReparent, uint64(t), uint64(p.TreeEpoch), 1)
}

// Parent returns the logger-wide current fetch parent and its global tier
// (for tests and the chaos harness's convergence invariant).
func (s *Secondary) Parent() (transport.Addr, int) {
	cand := s.currentParent()
	return cand.addr, cand.tier
}

// abandon gives up on the listed ranges and releases their waiters.
func (s *Secondary) abandon(st *secStream, ranges []wire.SeqRange) {
	var hi uint64
	for _, r := range ranges {
		if r.To > hi {
			hi = r.To
		}
		for seq := r.From; seq <= r.To; seq++ {
			if w, ok := st.pendingReq[seq]; ok {
				delete(st.pendingReq, seq)
				s.putWaiters(w)
			}
		}
	}
	if hi > st.gaveUpBelow {
		st.gaveUpBelow = hi
	}
	st.retries = 0
	s.stats.FetchesAbandoned++
	s.mx.abandoned.Inc()
}

func (s *Secondary) onAckerSelect(from transport.Addr, p *wire.Packet) {
	if s.cfg.DisableAcking {
		return
	}
	st := s.stream(KeyOf(p))
	st.source = from
	if p.Epoch <= st.ackerEpoch && st.ackerEpoch != 0 {
		return // stale or duplicate selection round
	}
	if s.env.Rand().Float64() < p.PAck {
		st.isAcker = true
		st.ackerEpoch = p.Epoch
		resp := wire.Packet{
			Type: wire.TypeAckerResponse, Source: p.Source, Group: p.Group,
			Epoch: p.Epoch,
		}
		s.send(from, &resp)
		s.stats.AckerSelections++
	} else {
		st.isAcker = false
		st.ackerEpoch = p.Epoch
	}
}

func (s *Secondary) onProbe(from transport.Addr, p *wire.Packet) {
	if s.cfg.DisableAcking {
		return
	}
	if s.env.Rand().Float64() < p.PAck {
		resp := wire.Packet{
			Type: wire.TypeSizeProbeResponse, Source: p.Source, Group: p.Group,
			ProbeID: p.ProbeID,
		}
		s.send(from, &resp)
		s.stats.ProbeResponses++
	}
}

func (s *Secondary) onDiscovery(from transport.Addr, p *wire.Packet) {
	if s.cfg.DisableDiscovery {
		return
	}
	delay := time.Duration(0)
	if s.cfg.DiscoveryJitter > 0 {
		delay = time.Duration(s.env.Rand().Int63n(int64(s.cfg.DiscoveryJitter)))
	}
	reply := wire.Packet{
		Type: wire.TypeDiscoveryReply, Source: p.Source, Group: p.Group,
		Addr: s.env.LocalAddr().String(),
	}
	s.after(delay, func() {
		s.send(from, &reply)
		s.stats.DiscoveryReplies++
	})
}

func (s *Secondary) onRedirect(p *wire.Packet) {
	addr, err := s.env.ParseAddr(p.Addr)
	if err != nil {
		s.stats.Malformed++
		return
	}
	st := s.stream(KeyOf(p))
	// Epoch fence (§2.2.3): a redirect stamped below the highest primary
	// epoch we have observed comes from a fenced, stale primary.
	if p.Epoch < st.primaryEpoch {
		s.stats.StaleRedirects++
		s.mx.staleRedirects.Inc()
		s.mx.sink.Emit(s.now(), obs.KindFenceHit, uint64(st.primaryEpoch), uint64(p.Epoch), uint64(p.Type))
		return
	}
	if p.Epoch > st.primaryEpoch {
		s.mx.sink.Emit(s.now(), obs.KindEpochBump, uint64(st.primaryEpoch), uint64(p.Epoch), 0)
		st.primaryEpoch = p.Epoch
		s.mx.primaryEpoch.Set(int64(st.primaryEpoch))
	}
	if p.Epoch > s.priEpochHigh {
		s.priEpochHigh = p.Epoch
	}
	// The primary moved: record it in the escalation chain's final slot so
	// a later escalation targets the live primary, but only re-target the
	// stream's fetches when it is the primary we are currently fetching
	// from (a lower-tier parent is unaffected by a primary failover).
	if n := len(s.cands); n > 0 {
		s.cands[n-1].addr = addr
		if s.slot != n-1 {
			return
		}
		st.fetchTier = s.cands[n-1].tier
	}
	if st.primary == addr {
		return // already pointed there; nothing new
	}
	st.primary = addr
	s.stats.RedirectsFollowed++
	// A new primary may be able to serve what we had given up on.
	st.gaveUpBelow = 0
	// Re-target any in-flight fetch episode: retries burned against the
	// old (dead) primary must not count toward MaxRetries at the new one,
	// and the pending retry should re-fire at the new address now rather
	// than after a full backoff interval.
	st.retries = 0
	if st.retryTimer != nil {
		st.retryTimer.Stop()
		st.retryTimer = nil
		s.fetchMissing(st)
		return
	}
	s.checkGaps(st)
}

func (s *Secondary) send(to transport.Addr, p *wire.Packet) {
	buf, err := p.AppendMarshal(s.scratch[:0])
	if err != nil {
		return
	}
	s.scratch = buf
	s.mx.tx.Record(int(wire.ClassOf(p.Type)), len(buf))
	_ = s.env.Send(to, buf)
}

func (s *Secondary) multicast(p *wire.Packet, ttl int) {
	buf, err := p.AppendMarshal(s.scratch[:0])
	if err != nil {
		return
	}
	s.scratch = buf
	s.mx.tx.Record(int(wire.ClassOf(p.Type)), len(buf))
	_ = s.env.Multicast(s.cfg.Group, ttl, buf)
}
