package logger

import (
	"slices"
	"time"

	"lbrm/internal/obs"
	"lbrm/internal/transport"
	"lbrm/internal/vtime"
	"lbrm/internal/wire"
)

// SecondaryConfig configures a site's secondary logging server.
type SecondaryConfig struct {
	// Group is the multicast group to log.
	Group wire.GroupID
	// Primary is the primary logging server's address. It may be updated
	// at runtime by a TypePrimaryRedirect.
	Primary transport.Addr
	// Retention bounds the local log.
	Retention Retention
	// RespondToAckerSelection enables Designated Acker duty (§2.3). On by
	// default (disable for the pre-statistical-ack baseline).
	DisableAcking bool
	// DisableDiscovery stops the logger answering discovery queries.
	DisableDiscovery bool
	// NackDelay aggregates gap discoveries before one NACK goes to the
	// primary. It also gives a source re-multicast (statistical ack) a
	// chance to repair the loss first: §2.3.2 recommends waiting until
	// t_wait − h_min after the heartbeat that revealed the loss.
	NackDelay time.Duration
	// RequestTimeout is the retry interval for unanswered NACKs to the
	// primary.
	RequestTimeout time.Duration
	// MaxRetries bounds NACK retries per fetch episode.
	MaxRetries int
	// RemcastThreshold is the number of distinct local requesters for the
	// same packet within RemcastWindow that triggers a site-scoped
	// re-multicast instead of unicasts (§2.2.1).
	RemcastThreshold int
	// RemcastWindow is the counting window for RemcastThreshold.
	RemcastWindow time.Duration
	// RecoveryWindow caps how far behind the stream head the logger will
	// backfill (default 4096 sequence numbers); falling further behind
	// skips ahead, like a fresh late join. Bounds state and the work a
	// forged sequence number can cause.
	RecoveryWindow uint64
	// RemcastTTL is the multicast scope for re-multicast repairs
	// (default transport.TTLSite). A logger serving a wider tier — e.g. a
	// region logger in a multi-level hierarchy (§7) — must widen it so its
	// repairs reach its clients.
	RemcastTTL int
	// DiscoveryJitter is the maximum random delay before answering a
	// discovery query (avoids reply implosion when several loggers hear
	// the same query).
	DiscoveryJitter time.Duration
	// Obs receives metrics and trace events (nil = uninstrumented; the
	// datapath stays zero-allocation either way, see DESIGN.md §9).
	Obs *obs.Sink
}

// withDefaults fills zero fields.
func (c SecondaryConfig) withDefaults() SecondaryConfig {
	if c.NackDelay == 0 {
		c.NackDelay = 20 * time.Millisecond
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 500 * time.Millisecond
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 8
	}
	if c.RemcastThreshold == 0 {
		c.RemcastThreshold = 3
	}
	if c.RemcastWindow == 0 {
		c.RemcastWindow = 100 * time.Millisecond
	}
	if c.RemcastTTL == 0 {
		c.RemcastTTL = transport.TTLSite
	}
	if c.RecoveryWindow == 0 {
		c.RecoveryWindow = 4096
	}
	if c.DiscoveryJitter == 0 {
		c.DiscoveryJitter = 10 * time.Millisecond
	}
	return c
}

// SecondaryStats counts a secondary logger's protocol activity.
type SecondaryStats struct {
	PacketsLogged     uint64 // data/retrans stored
	Duplicates        uint64
	NacksFromClients  uint64 // NACK packets received from local receivers
	SeqsRequested     uint64 // sequence numbers requested by local receivers
	RetransUnicast    uint64 // retransmissions served point-to-point
	Remulticasts      uint64 // site-scoped multicast repairs
	NacksToPrimary    uint64 // NACK packets sent up to the primary
	FetchesSatisfied  uint64 // missing packets recovered from the primary
	FetchesAbandoned  uint64
	AckerSelections   uint64 // epochs this logger volunteered for
	AcksSent          uint64
	ProbeResponses    uint64
	DiscoveryReplies  uint64
	RedirectsFollowed uint64
	StaleRedirects    uint64 // redirects fenced by the primary epoch
	SkippedAhead      uint64 // recovery-window skips (fell too far behind)
	Malformed         uint64
}

// Secondary is a site secondary logging server (§2.2.1): it subscribes to
// the data group, logs every packet, serves local retransmission requests,
// and recovers its own losses from the primary so that only one NACK per
// site crosses the tail circuit.
type Secondary struct {
	cfg     SecondaryConfig
	env     transport.Env
	streams map[StreamKey]*secStream
	stopped bool
	// last is a one-entry stream cache: traffic arrives in long runs from
	// the same stream, so most lookups skip the map hash.
	last *secStream
	// scratch is the reusable wire-encoding buffer (bindings copy).
	scratch []byte
	// dec recycles NACK range storage across decodes.
	dec wire.Decoder
	// ackPkt is the reusable Designated-Acker ACK: built in place per data
	// packet so the steady-state ack path performs zero allocations.
	ackPkt wire.Packet
	// rangeScratch/seqScratch/trackScratch back missing()'s working
	// slices between calls; their contents are dead once the NACK is
	// marshalled.
	rangeScratch []wire.SeqRange
	seqScratch   []uint64
	trackScratch []wire.SeqRange
	// waiterPool recycles the per-seq waiter maps of pendingReq.
	waiterPool []map[transport.Addr]bool
	// reqPool recycles reqWindow entries; each keeps its requester map
	// and expiry timer across episodes (the timer is re-armed with Reset,
	// so steady-state request-window churn allocates nothing).
	reqPool []*reqCount
	stats   SecondaryStats
	// mx caches the preregistered metric handles (all nil-safe): resolved
	// once at construction so the hot path is atomic adds only.
	mx secondaryMetrics
}

// secondaryMetrics holds the secondary's preregistered observability
// handles. Every field no-ops when the sink is nil.
type secondaryMetrics struct {
	sink           *obs.Sink
	tx             *obs.ClassCounters
	logged         *obs.Counter
	duplicates     *obs.Counter
	acksSent       *obs.Counter
	nacksToPrimary *obs.Counter
	retransUnicast *obs.Counter
	remulticasts   *obs.Counter
	abandoned      *obs.Counter
	skippedAhead   *obs.Counter
	staleRedirects *obs.Counter
	primaryEpoch   *obs.Gauge
	nackRanges     *obs.Histogram
}

func newSecondaryMetrics(sink *obs.Sink) secondaryMetrics {
	return secondaryMetrics{
		sink:           sink,
		tx:             sink.Classes("secondary.tx", wire.TrafficClassNames()),
		logged:         sink.Counter("secondary.logged"),
		duplicates:     sink.Counter("secondary.duplicates"),
		acksSent:       sink.Counter("secondary.acks_sent"),
		nacksToPrimary: sink.Counter("secondary.nacks_to_primary"),
		retransUnicast: sink.Counter("secondary.retrans_unicast"),
		remulticasts:   sink.Counter("secondary.remulticasts"),
		abandoned:      sink.Counter("secondary.fetches_abandoned"),
		skippedAhead:   sink.Counter("secondary.skipped_ahead"),
		staleRedirects: sink.Counter("secondary.fence.stale_redirects"),
		primaryEpoch:   sink.Gauge("secondary.primary_epoch"),
		nackRanges:     sink.Histogram("secondary.nack.ranges", []uint64{1, 2, 4, 8, 16, 32}),
	}
}

type secStream struct {
	key     StreamKey
	store   *Store
	source  transport.Addr // learned from the stream's data packets
	primary transport.Addr
	// primaryEpoch is the highest primary epoch observed (heartbeats and
	// redirects carry it); redirects stamped lower are from a fenced, stale
	// primary and must not move the fetch target.
	primaryEpoch uint32
	// hbHigh is the highest sequence number referenced by a heartbeat.
	hbHigh uint64
	// pendingReq holds local receivers waiting for packets we don't have.
	pendingReq map[uint64]map[transport.Addr]bool
	// fetch state toward the primary.
	nackTimer  vtime.Timer
	retryTimer vtime.Timer
	retries    int
	// gaveUpBelow suppresses re-fetching sequence numbers we already
	// abandoned.
	gaveUpBelow uint64
	// recent request counts per seq for the re-multicast decision.
	reqWindow map[uint64]*reqCount
	// acker state.
	isAcker    bool
	ackerEpoch uint32
}

type reqCount struct {
	requesters  map[transport.Addr]bool
	remulticast bool
	expire      vtime.Timer
	// Pool plumbing: the expiry callback is created once per reqCount and
	// reads the episode's identity from these fields, so re-arming the
	// window for a new seq is a Reset, not an allocation. armed guards
	// against a stale timer firing after the entry was recycled.
	seq   uint64
	st    *secStream
	armed bool
}

// NewSecondary returns a secondary logger for cfg.
func NewSecondary(cfg SecondaryConfig) *Secondary {
	return &Secondary{
		cfg:     cfg.withDefaults(),
		streams: make(map[StreamKey]*secStream),
		mx:      newSecondaryMetrics(cfg.Obs),
	}
}

// now returns the trace timestamp (0 before Start).
func (s *Secondary) now() int64 {
	if s.env == nil {
		return 0
	}
	return s.env.Now().UnixNano()
}

// Stats returns a snapshot of the logger's counters.
func (s *Secondary) Stats() SecondaryStats { return s.stats }

// Stop halts the logger's timers and packet processing and releases any
// disk spill files. Safe to call once.
func (s *Secondary) Stop() {
	s.stopped = true
	for _, st := range s.streams {
		st.store.Close()
	}
}

// after schedules fn guarded by the stopped flag.
func (s *Secondary) after(d time.Duration, fn func()) vtime.Timer {
	return s.env.AfterFunc(d, func() {
		if !s.stopped {
			fn()
		}
	})
}

// PrimaryTarget returns the stream's current fetch target and the highest
// primary epoch observed for it (for tests).
func (s *Secondary) PrimaryTarget(key StreamKey) (transport.Addr, uint32) {
	if st := s.streams[key]; st != nil {
		return st.primary, st.primaryEpoch
	}
	return nil, 0
}

// Store returns the log store for a stream (nil if the stream is unknown),
// for tests and tooling.
func (s *Secondary) Store(key StreamKey) *Store {
	if st := s.streams[key]; st != nil {
		return st.store
	}
	return nil
}

// Start implements transport.Handler.
func (s *Secondary) Start(env transport.Env) {
	s.env = env
	if err := env.Join(s.cfg.Group); err != nil {
		panic("logger: secondary failed to join group: " + err.Error())
	}
	if d := evictInterval(s.cfg.Retention); d > 0 {
		env.AfterFunc(d, s.evictTick)
	}
}

// evictTick enforces age-based retention even on idle streams.
func (s *Secondary) evictTick() {
	now := s.env.Now()
	for _, st := range s.streams {
		st.store.EvictExpired(now)
	}
	s.after(evictInterval(s.cfg.Retention), s.evictTick)
}

// Recv implements transport.Handler.
func (s *Secondary) Recv(from transport.Addr, data []byte) {
	if s.stopped {
		return
	}
	var p wire.Packet
	// The shared Decoder recycles NACK range storage across packets:
	// p.Ranges is dead once this call returns, so the alias is safe.
	if err := s.dec.Unmarshal(data, &p); err != nil {
		s.stats.Malformed++
		return
	}
	if p.Group != s.cfg.Group {
		return
	}
	switch p.Type {
	case wire.TypeData, wire.TypeRetrans, wire.TypeLogSync:
		s.onData(from, &p)
	case wire.TypeHeartbeat:
		s.onHeartbeat(from, &p)
	case wire.TypeNack:
		s.onNack(from, &p)
	case wire.TypeAckerSelect:
		s.onAckerSelect(from, &p)
	case wire.TypeSizeProbe:
		s.onProbe(from, &p)
	case wire.TypeDiscoveryQuery:
		s.onDiscovery(from, &p)
	case wire.TypePrimaryRedirect:
		s.onRedirect(&p)
	}
}

func (s *Secondary) stream(key StreamKey) *secStream {
	if st := s.last; st != nil && st.key == key {
		return st
	}
	st := s.streams[key]
	if st == nil {
		st = &secStream{
			key:        key,
			store:      NewStore(s.cfg.Retention),
			primary:    s.cfg.Primary,
			pendingReq: make(map[uint64]map[transport.Addr]bool),
			reqWindow:  make(map[uint64]*reqCount),
		}
		s.streams[key] = st
	}
	s.last = st
	return st
}

// getWaiters takes a waiter map from the pool (or allocates one).
func (s *Secondary) getWaiters() map[transport.Addr]bool {
	if n := len(s.waiterPool); n > 0 {
		m := s.waiterPool[n-1]
		s.waiterPool = s.waiterPool[:n-1]
		return m
	}
	return make(map[transport.Addr]bool, 1)
}

// putWaiters returns a waiter map to the pool once its seq is resolved.
func (s *Secondary) putWaiters(m map[transport.Addr]bool) {
	clear(m)
	s.waiterPool = append(s.waiterPool, m)
}

// getReqCount takes a request-window entry from the pool (or builds a
// fresh one, creating its expiry callback exactly once) and arms it for
// (st, seq). Recycled entries re-arm their existing timer with Reset, so
// the steady-state request window allocates nothing.
func (s *Secondary) getReqCount(st *secStream, seq uint64) *reqCount {
	var rc *reqCount
	if n := len(s.reqPool); n > 0 {
		rc = s.reqPool[n-1]
		s.reqPool = s.reqPool[:n-1]
		clear(rc.requesters)
		rc.remulticast = false
	} else {
		rc = &reqCount{requesters: make(map[transport.Addr]bool, 1)}
	}
	rc.st, rc.seq, rc.armed = st, seq, true
	if rc.expire == nil {
		rc.expire = s.after(s.cfg.RemcastWindow, func() { s.expireReq(rc) })
	} else {
		rc.expire.Reset(s.cfg.RemcastWindow)
	}
	return rc
}

// expireReq closes one request-counting window and recycles its entry.
func (s *Secondary) expireReq(rc *reqCount) {
	if !rc.armed {
		return
	}
	rc.armed = false
	delete(rc.st.reqWindow, rc.seq)
	rc.st = nil
	s.reqPool = append(s.reqPool, rc)
}

func (s *Secondary) onData(from transport.Addr, p *wire.Packet) {
	st := s.stream(KeyOf(p))
	if p.Type == wire.TypeData && p.Flags&wire.FlagFromLogger == 0 {
		st.source = from
	}
	// A late-joining secondary logs from here on; it does not backfill the
	// stream's entire history (receivers needing older packets are served
	// on demand via the primary).
	if p.Seq > 0 {
		st.store.SetBase(p.Seq - 1)
	}
	stored := st.store.Put(p.Seq, p.Payload, s.env.Now())
	if !stored {
		s.stats.Duplicates++
		s.mx.duplicates.Inc()
	} else {
		s.stats.PacketsLogged++
		s.mx.logged.Inc()
		// Designated Acker duty: acknowledge fresh data of our epoch.
		if st.isAcker && p.Type == wire.TypeData && p.Epoch == st.ackerEpoch && st.source != nil {
			s.ackPkt = wire.Packet{
				Type: wire.TypeAck, Source: p.Source, Group: p.Group,
				Seq: p.Seq, Epoch: p.Epoch,
			}
			s.send(st.source, &s.ackPkt)
			s.stats.AcksSent++
			s.mx.acksSent.Inc()
		}
	}
	// Satisfy any local receivers waiting on this packet. A packet that
	// arrived from the primary (a fetched retransmission or a LogSync)
	// makes the relayed repair a primary-callback recovery; anything else
	// (the original multicast, a source re-multicast) leaves it a local
	// serve from this logger's view.
	if waiters := st.pendingReq[p.Seq]; len(waiters) > 0 {
		delete(st.pendingReq, p.Seq)
		viaPrimary := p.Flags&wire.FlagViaPrimary != 0 || p.Type == wire.TypeLogSync
		s.serveWaiters(st, p.Seq, waiters, viaPrimary)
		s.putWaiters(waiters)
	}
	s.checkGaps(st)
}

func (s *Secondary) onHeartbeat(from transport.Addr, p *wire.Packet) {
	st := s.stream(KeyOf(p))
	st.source = from
	if p.PrimaryEpoch > st.primaryEpoch {
		s.mx.sink.Emit(s.now(), obs.KindEpochBump, uint64(st.primaryEpoch), uint64(p.PrimaryEpoch), 0)
		st.primaryEpoch = p.PrimaryEpoch
		s.mx.primaryEpoch.Set(int64(st.primaryEpoch))
	}
	// First contact via heartbeat: adopt the current position, skipping
	// history.
	st.store.SetBase(p.Seq)
	if p.Seq > st.hbHigh {
		st.hbHigh = p.Seq
	}
	// A heartbeat carrying inline data doubles as a retransmission
	// (paper §7 extension).
	if p.Flags&wire.FlagInlineData != 0 && p.Seq > 0 {
		if st.store.Put(p.Seq, p.Payload, s.env.Now()) {
			s.stats.PacketsLogged++
			s.mx.logged.Inc()
		}
		if waiters := st.pendingReq[p.Seq]; len(waiters) > 0 {
			delete(st.pendingReq, p.Seq)
			s.serveWaiters(st, p.Seq, waiters, false)
			s.putWaiters(waiters)
		}
	}
	s.checkGaps(st)
}

// maxSeqsPerNack bounds the per-NACK work a client can demand.
const maxSeqsPerNack = 1024

func (s *Secondary) onNack(from transport.Addr, p *wire.Packet) {
	st := s.stream(KeyOf(p))
	s.stats.NacksFromClients++
	budget := maxSeqsPerNack
	needFetch := false
	for _, r := range p.Ranges {
		for seq := r.From; seq <= r.To && budget > 0; seq++ {
			budget--
			s.stats.SeqsRequested++
			if st.store.Has(seq) {
				s.serveLocal(st, seq, from)
				continue
			}
			if st.store.Evicted(seq) {
				// Evicted by retention: we cannot serve it and fetching it
				// again is pointless (the primary applies its own
				// retention); the receiver's escalation path handles it.
				continue
			}
			w := st.pendingReq[seq]
			if w == nil {
				w = s.getWaiters()
				st.pendingReq[seq] = w
			}
			w[from] = true
			needFetch = true
			// An explicit client request re-opens sequence numbers we had
			// given up on: the retry shows continued demand.
			if seq <= st.gaveUpBelow {
				st.gaveUpBelow = seq - 1
			}
		}
	}
	if needFetch {
		s.checkGaps(st)
	}
}

// serveLocal answers one locally-available retransmission request,
// deciding between unicast and site-scoped re-multicast based on recent
// demand (§2.2.1).
func (s *Secondary) serveLocal(st *secStream, seq uint64, from transport.Addr) {
	rc := st.reqWindow[seq]
	if rc == nil {
		rc = s.getReqCount(st, seq)
		st.reqWindow[seq] = rc
	}
	rc.requesters[from] = true
	if rc.remulticast {
		return // already re-multicast within this window; requester will hear it
	}
	if len(rc.requesters) >= s.cfg.RemcastThreshold {
		rc.remulticast = true
		s.retransmit(st, seq, nil, false)
		return
	}
	s.retransmit(st, seq, from, false)
}

// serveWaiters delivers a just-recovered packet to the receivers that
// asked for it. viaPrimary records whether the packet had to be fetched
// through the primary callback (§2.2.2) rather than found locally.
func (s *Secondary) serveWaiters(st *secStream, seq uint64, waiters map[transport.Addr]bool, viaPrimary bool) {
	if len(waiters) >= s.cfg.RemcastThreshold {
		s.retransmit(st, seq, nil, viaPrimary)
		return
	}
	for w := range waiters {
		s.retransmit(st, seq, w, viaPrimary)
	}
}

// retransmit sends the stored packet for seq to one receiver (unicast) or,
// with to == nil, re-multicasts it with site scope. viaPrimary stamps
// FlagViaPrimary so receivers attribute the repair to the primary-callback
// path.
func (s *Secondary) retransmit(st *secStream, seq uint64, to transport.Addr, viaPrimary bool) {
	payload, ok := st.store.Get(seq)
	if !ok {
		return
	}
	p := wire.Packet{
		Type: wire.TypeRetrans, Flags: wire.FlagRetransmission | wire.FlagFromLogger,
		Source: st.key.Source, Group: st.key.Group, Seq: seq, Payload: payload,
	}
	path := wire.PathLocal
	if viaPrimary {
		p.Flags |= wire.FlagViaPrimary
		path = wire.PathPrimaryCallback
	}
	if to == nil {
		s.multicast(&p, s.cfg.RemcastTTL)
		s.stats.Remulticasts++
		s.mx.remulticasts.Inc()
		s.mx.sink.EmitFlight(s.now(), obs.KindServe, seq, uint64(path), 1)
		return
	}
	s.send(to, &p)
	s.stats.RetransUnicast++
	s.mx.retransUnicast.Inc()
	s.mx.sink.EmitFlight(s.now(), obs.KindServe, seq, uint64(path), 0)
}

// clampWindow enforces RecoveryWindow: a logger that is hopelessly behind
// (or being fed forged sequence numbers) skips ahead instead of
// backfilling without bound.
func (s *Secondary) clampWindow(st *secStream) {
	hi := st.store.Highest()
	if st.hbHigh > hi {
		hi = st.hbHigh
	}
	contig := st.store.Contiguous()
	if hi <= contig+s.cfg.RecoveryWindow {
		return
	}
	skipTo := hi - s.cfg.RecoveryWindow
	s.mx.sink.Emit(s.now(), obs.KindSkipAhead, contig, skipTo, 0)
	st.store.Advance(skipTo)
	if skipTo > st.gaveUpBelow {
		st.gaveUpBelow = skipTo
	}
	for seq, w := range st.pendingReq {
		if seq <= skipTo {
			delete(st.pendingReq, seq)
			s.putWaiters(w)
		}
	}
	s.stats.SkippedAhead++
	s.mx.skippedAhead.Inc()
}

// checkGaps schedules a fetch from the primary when the local log has
// holes (either sequence gaps or heartbeat-revealed missing packets).
func (s *Secondary) checkGaps(st *secStream) {
	s.clampWindow(st)
	if st.nackTimer != nil || st.retryTimer != nil {
		return
	}
	// Fast path for the per-packet steady state: a contiguous log with no
	// waiting receivers has nothing to fetch, so skip building the range
	// list (missing sorts and appends) entirely.
	hi := st.store.Highest()
	if st.hbHigh > hi {
		hi = st.hbHigh
	}
	if len(st.pendingReq) == 0 && hi <= st.store.Contiguous() {
		return
	}
	if len(s.missing(st)) == 0 {
		return
	}
	st.nackTimer = s.after(s.cfg.NackDelay, func() {
		st.nackTimer = nil
		st.retries = 0
		s.fetchMissing(st)
	})
}

// missing returns what the stream should fetch from the primary: log gaps
// above the give-up watermark, plus packets local receivers explicitly
// asked for (including pre-join history below the base watermark). The
// returned slice is backed by the Secondary's scratch storage and is valid
// only until the next missing call.
func (s *Secondary) missing(st *secStream) []wire.SeqRange {
	hi := st.store.Highest()
	if st.hbHigh > hi {
		hi = st.hbHigh
	}
	out := s.rangeScratch[:0]
	s.trackScratch = st.store.AppendMissing(s.trackScratch[:0], hi, wire.MaxNackRanges)
	for _, r := range s.trackScratch {
		if r.To <= st.gaveUpBelow {
			continue
		}
		if r.From <= st.gaveUpBelow {
			r.From = st.gaveUpBelow + 1
		}
		out = append(out, r)
	}
	covered := func(seq uint64) bool {
		for _, r := range out {
			if r.Contains(seq) {
				return true
			}
		}
		return false
	}
	extra := s.seqScratch[:0]
	for seq := range st.pendingReq {
		if st.store.Has(seq) || st.store.Evicted(seq) || covered(seq) {
			continue
		}
		extra = append(extra, seq)
	}
	s.seqScratch = extra
	if len(extra) > 0 {
		slices.Sort(extra)
		for _, seq := range extra {
			if n := len(out); n > 0 && out[n-1].To+1 == seq {
				out[n-1].To = seq
				continue
			}
			out = append(out, wire.SeqRange{From: seq, To: seq})
		}
		slices.SortFunc(out, func(a, b wire.SeqRange) int {
			switch {
			case a.From < b.From:
				return -1
			case a.From > b.From:
				return 1
			}
			return 0
		})
	}
	if len(out) > wire.MaxNackRanges {
		out = out[:wire.MaxNackRanges]
	}
	s.rangeScratch = out
	return out
}

// fetchMissing sends one aggregated NACK to the primary and arms the retry
// timer.
func (s *Secondary) fetchMissing(st *secStream) {
	ranges := s.missing(st)
	if len(ranges) == 0 {
		st.retries = 0
		return
	}
	if st.primary == nil {
		// No primary known: abandon these waiters; receivers escalate on
		// their own timeout.
		s.abandon(st, ranges)
		return
	}
	if st.retries >= s.cfg.MaxRetries {
		s.abandon(st, ranges)
		return
	}
	st.retries++
	nack := wire.Packet{
		Type: wire.TypeNack, Source: st.key.Source, Group: st.key.Group,
		Ranges: ranges,
	}
	s.send(st.primary, &nack)
	s.stats.NacksToPrimary++
	s.mx.nacksToPrimary.Inc()
	s.mx.nackRanges.Observe(uint64(len(ranges)))
	if s.mx.sink != nil {
		// Flight recorder: the site's aggregated fetch is the NACK hop of
		// every covered seq's primary-callback chain (phase 3 = secondary→
		// primary, after the receiver's phases 0–2).
		nowNS := s.now()
		for _, r := range ranges {
			for seq := r.From; seq <= r.To; seq++ {
				s.mx.sink.EmitFlight(nowNS, obs.KindNackSend, seq, 3, uint64(st.retries-1))
			}
		}
	}
	// Jittered exponential backoff: every site logger behind a healed
	// partition holds the same gaps; fixed-period retries would hit the
	// primary in synchronized waves (§2.2.2's correlated loss applies to
	// control traffic too).
	retry := transport.Backoff{Base: s.cfg.RequestTimeout}.Interval(st.retries-1, s.env.Rand())
	st.retryTimer = s.after(retry, func() {
		st.retryTimer = nil
		s.fetchMissing(st)
	})
}

// abandon gives up on the listed ranges and releases their waiters.
func (s *Secondary) abandon(st *secStream, ranges []wire.SeqRange) {
	var hi uint64
	for _, r := range ranges {
		if r.To > hi {
			hi = r.To
		}
		for seq := r.From; seq <= r.To; seq++ {
			if w, ok := st.pendingReq[seq]; ok {
				delete(st.pendingReq, seq)
				s.putWaiters(w)
			}
		}
	}
	if hi > st.gaveUpBelow {
		st.gaveUpBelow = hi
	}
	st.retries = 0
	s.stats.FetchesAbandoned++
	s.mx.abandoned.Inc()
}

func (s *Secondary) onAckerSelect(from transport.Addr, p *wire.Packet) {
	if s.cfg.DisableAcking {
		return
	}
	st := s.stream(KeyOf(p))
	st.source = from
	if p.Epoch <= st.ackerEpoch && st.ackerEpoch != 0 {
		return // stale or duplicate selection round
	}
	if s.env.Rand().Float64() < p.PAck {
		st.isAcker = true
		st.ackerEpoch = p.Epoch
		resp := wire.Packet{
			Type: wire.TypeAckerResponse, Source: p.Source, Group: p.Group,
			Epoch: p.Epoch,
		}
		s.send(from, &resp)
		s.stats.AckerSelections++
	} else {
		st.isAcker = false
		st.ackerEpoch = p.Epoch
	}
}

func (s *Secondary) onProbe(from transport.Addr, p *wire.Packet) {
	if s.cfg.DisableAcking {
		return
	}
	if s.env.Rand().Float64() < p.PAck {
		resp := wire.Packet{
			Type: wire.TypeSizeProbeResponse, Source: p.Source, Group: p.Group,
			ProbeID: p.ProbeID,
		}
		s.send(from, &resp)
		s.stats.ProbeResponses++
	}
}

func (s *Secondary) onDiscovery(from transport.Addr, p *wire.Packet) {
	if s.cfg.DisableDiscovery {
		return
	}
	delay := time.Duration(0)
	if s.cfg.DiscoveryJitter > 0 {
		delay = time.Duration(s.env.Rand().Int63n(int64(s.cfg.DiscoveryJitter)))
	}
	reply := wire.Packet{
		Type: wire.TypeDiscoveryReply, Source: p.Source, Group: p.Group,
		Addr: s.env.LocalAddr().String(),
	}
	s.after(delay, func() {
		s.send(from, &reply)
		s.stats.DiscoveryReplies++
	})
}

func (s *Secondary) onRedirect(p *wire.Packet) {
	addr, err := s.env.ParseAddr(p.Addr)
	if err != nil {
		s.stats.Malformed++
		return
	}
	st := s.stream(KeyOf(p))
	// Epoch fence (§2.2.3): a redirect stamped below the highest primary
	// epoch we have observed comes from a fenced, stale primary.
	if p.Epoch < st.primaryEpoch {
		s.stats.StaleRedirects++
		s.mx.staleRedirects.Inc()
		s.mx.sink.Emit(s.now(), obs.KindFenceHit, uint64(st.primaryEpoch), uint64(p.Epoch), uint64(p.Type))
		return
	}
	if p.Epoch > st.primaryEpoch {
		s.mx.sink.Emit(s.now(), obs.KindEpochBump, uint64(st.primaryEpoch), uint64(p.Epoch), 0)
		st.primaryEpoch = p.Epoch
		s.mx.primaryEpoch.Set(int64(st.primaryEpoch))
	}
	if st.primary == addr {
		return // already pointed there; nothing new
	}
	st.primary = addr
	s.stats.RedirectsFollowed++
	// A new primary may be able to serve what we had given up on.
	st.gaveUpBelow = 0
	// Re-target any in-flight fetch episode: retries burned against the
	// old (dead) primary must not count toward MaxRetries at the new one,
	// and the pending retry should re-fire at the new address now rather
	// than after a full backoff interval.
	st.retries = 0
	if st.retryTimer != nil {
		st.retryTimer.Stop()
		st.retryTimer = nil
		s.fetchMissing(st)
		return
	}
	s.checkGaps(st)
}

func (s *Secondary) send(to transport.Addr, p *wire.Packet) {
	buf, err := p.AppendMarshal(s.scratch[:0])
	if err != nil {
		return
	}
	s.scratch = buf
	s.mx.tx.Record(int(wire.ClassOf(p.Type)), len(buf))
	_ = s.env.Send(to, buf)
}

func (s *Secondary) multicast(p *wire.Packet, ttl int) {
	buf, err := p.AppendMarshal(s.scratch[:0])
	if err != nil {
		return
	}
	s.scratch = buf
	s.mx.tx.Record(int(wire.ClassOf(p.Type)), len(buf))
	_ = s.env.Multicast(s.cfg.Group, ttl, buf)
}
