// Package logger implements LBRM's logging service (§2.2): the log store,
// the primary logging server (with replication and failover support,
// §2.2.3), and the per-site secondary logging server (§2.2.1) that serves
// local retransmissions, aggregates NACKs toward the primary, and acts as a
// Designated Acker under statistical acknowledgement (§2.3).
package logger

import (
	"fmt"
	"time"

	"lbrm/internal/seqtrack"
	"lbrm/internal/wire"
)

// Retention bounds what a Store keeps. Zero fields mean unlimited; the
// paper notes that retention is application-specific ("useful lifetime" vs
// full persistence).
type Retention struct {
	// MaxPackets caps the number of stored packets per stream.
	MaxPackets int
	// MaxBytes caps the stored payload bytes per stream.
	MaxBytes int64
	// MaxAge expires packets older than this (enforced on Put and
	// EvictExpired).
	MaxAge time.Duration
	// SpillToDisk writes packets evicted from memory to an append-only
	// spill file instead of dropping them, so they stay servable (§2:
	// "writing them to disk once in-memory buffers are full").
	SpillToDisk bool
	// SpillDir is the directory for the spill file (default: os temp dir).
	SpillDir string
	// SpillMaxBytes bounds the bytes reachable on disk (0 = unlimited);
	// the oldest spilled packets are dropped beyond it.
	SpillMaxBytes int64
}

type entry struct {
	seq  uint64
	data []byte
	at   time.Time
}

// Store is the sequence-indexed packet log for one stream. Sequence
// numbers start at 1. Eviction removes the oldest packets first;
// contiguity tracking (what has been *seen*) is unaffected by eviction.
type Store struct {
	ret     Retention
	entries map[uint64]*entry
	order   []uint64 // insertion order, for eviction
	bytes   int64

	// track holds the stream's sequence bookkeeping (contiguity, base
	// watermark, gaps).
	track seqtrack.Tracker
	// spill holds disk-resident evicted packets (nil until first spill).
	spill *spillFile
	// spillErrs counts spill failures (packet dropped instead).
	spillErrs int
}

// NewStore returns an empty store with the given retention policy.
func NewStore(ret Retention) *Store {
	return &Store{
		ret:     ret,
		entries: make(map[uint64]*entry),
	}
}

// Put logs a packet. It returns false for duplicates (seq already seen) and
// for seq 0, true otherwise. The payload is copied. Sequence numbers at or
// below the base watermark are accepted as backfill (stored for serving,
// without contiguity bookkeeping).
func (s *Store) Put(seq uint64, data []byte, now time.Time) bool {
	if seq == 0 {
		return false
	}
	if seq <= s.track.Base() && s.track.Contacted() {
		if _, ok := s.entries[seq]; ok {
			return false
		}
	} else if !s.track.Mark(seq) {
		return false
	}
	e := &entry{seq: seq, data: append([]byte(nil), data...), at: now}
	s.entries[seq] = e
	s.order = append(s.order, seq)
	s.bytes += int64(len(e.data))
	s.evict(now)
	return true
}

// Get returns the stored payload for seq, from memory or the disk spill.
func (s *Store) Get(seq uint64) ([]byte, bool) {
	if e, ok := s.entries[seq]; ok {
		return e.data, true
	}
	if s.spill != nil {
		return s.spill.get(seq)
	}
	return nil, false
}

// Has reports whether the payload for seq is servable (in memory or on
// disk).
func (s *Store) Has(seq uint64) bool {
	if _, ok := s.entries[seq]; ok {
		return true
	}
	return s.spill != nil && s.spill.has(seq)
}

// InMemory reports whether seq's payload is held in memory (false for
// spilled or absent packets).
func (s *Store) InMemory(seq uint64) bool {
	_, ok := s.entries[seq]
	return ok
}

// SpillErrors returns the number of packets lost to spill-file failures.
func (s *Store) SpillErrors() int { return s.spillErrs }

// Close releases the disk spill file, if any.
func (s *Store) Close() error {
	if s.spill == nil {
		return nil
	}
	sp := s.spill
	s.spill = nil
	return sp.close()
}

// Seen reports whether seq has ever been logged or skipped by the base
// watermark.
func (s *Store) Seen(seq uint64) bool { return s.track.Seen(seq) }

// Evicted reports whether seq was logged and later dropped by retention —
// as opposed to never having been held at all (below the base watermark).
// Spilled packets are not evicted: they remain servable.
func (s *Store) Evicted(seq uint64) bool {
	return seq > s.track.Base() && s.track.Seen(seq) && !s.Has(seq)
}

// SetBase declares that history up to and including seq is deliberately
// skipped (a late joiner starting mid-stream). It applies only on the very
// first contact with the stream.
func (s *Store) SetBase(seq uint64) { s.track.SetBase(seq) }

// Base returns the skip watermark.
func (s *Store) Base() uint64 { return s.track.Base() }

// Advance force-skips history up to seq (see seqtrack.Tracker.Advance):
// the skipped packets count as seen but are not stored.
func (s *Store) Advance(seq uint64) { s.track.Advance(seq) }

// Len returns the number of stored packets.
func (s *Store) Len() int { return len(s.entries) }

// Bytes returns the stored payload bytes.
func (s *Store) Bytes() int64 { return s.bytes }

// Contiguous returns the highest c such that every sequence number in
// [1, c] has been seen (0 when seq 1 is still missing) — the cumulative
// acknowledgement value for LogSyncAck and SourceAck.
func (s *Store) Contiguous() uint64 { return s.track.Contiguous() }

// Highest returns the largest sequence number seen.
func (s *Store) Highest() uint64 { return s.track.Highest() }

// Missing returns up to maxRanges ranges of sequence numbers in
// (Base, hi] that have not been seen. hi of 0 means Highest().
func (s *Store) Missing(hi uint64, maxRanges int) []wire.SeqRange {
	return s.track.Missing(hi, maxRanges)
}

// EvictExpired drops packets older than MaxAge.
func (s *Store) EvictExpired(now time.Time) { s.evictAge(now) }

func (s *Store) evict(now time.Time) {
	s.evictAge(now)
	for (s.ret.MaxPackets > 0 && len(s.entries) > s.ret.MaxPackets) ||
		(s.ret.MaxBytes > 0 && s.bytes > s.ret.MaxBytes) {
		if !s.evictOldest() {
			return
		}
	}
}

func (s *Store) evictAge(now time.Time) {
	if s.ret.MaxAge <= 0 {
		return
	}
	cutoff := now.Add(-s.ret.MaxAge)
	for len(s.order) > 0 {
		seq := s.order[0]
		e, ok := s.entries[seq]
		if ok && e.at.After(cutoff) {
			return
		}
		if !ok { // already evicted by size pressure
			s.order = s.order[1:]
			continue
		}
		s.evictOldest()
	}
}

func (s *Store) evictOldest() bool {
	for len(s.order) > 0 {
		seq := s.order[0]
		s.order = s.order[1:]
		if e, ok := s.entries[seq]; ok {
			s.spillOut(e)
			s.bytes -= int64(len(e.data))
			delete(s.entries, seq)
			return true
		}
	}
	return false
}

// spillOut moves one evicted entry to the disk spill file when enabled.
func (s *Store) spillOut(e *entry) {
	if !s.ret.SpillToDisk {
		return
	}
	if s.spill == nil {
		sp, err := newSpillFile(s.ret.SpillDir, s.ret.SpillMaxBytes)
		if err != nil {
			s.spillErrs++
			return
		}
		s.spill = sp
	}
	if err := s.spill.put(e.seq, e.data); err != nil {
		s.spillErrs++
	}
}

// evictInterval derives the periodic retention-tick spacing from a
// policy: a quarter of MaxAge, clamped to [100ms, 1min]; 0 when age-based
// retention is off.
func evictInterval(ret Retention) time.Duration {
	if ret.MaxAge <= 0 {
		return 0
	}
	d := ret.MaxAge / 4
	if d < 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	if d > time.Minute {
		d = time.Minute
	}
	return d
}

// StreamKey identifies one data stream at a logger: the pair of source and
// group.
type StreamKey struct {
	Source wire.SourceID
	Group  wire.GroupID
}

// String renders the key for logs.
func (k StreamKey) String() string {
	return fmt.Sprintf("src=%d/grp=%d", k.Source, k.Group)
}

// KeyOf extracts the stream key from a packet.
func KeyOf(p *wire.Packet) StreamKey {
	return StreamKey{Source: p.Source, Group: p.Group}
}
