// Package logger implements LBRM's logging service (§2.2): the log store,
// the primary logging server (with replication and failover support,
// §2.2.3), and the per-site secondary logging server (§2.2.1) that serves
// local retransmissions, aggregates NACKs toward the primary, and acts as a
// Designated Acker under statistical acknowledgement (§2.3).
package logger

import (
	"fmt"
	"time"

	"lbrm/internal/seqtrack"
	"lbrm/internal/wire"
)

// Retention bounds what a Store keeps. Zero fields mean unlimited; the
// paper notes that retention is application-specific ("useful lifetime" vs
// full persistence).
type Retention struct {
	// MaxPackets caps the number of stored packets per stream.
	MaxPackets int
	// MaxBytes caps the stored payload bytes per stream.
	MaxBytes int64
	// MaxAge expires packets older than this (enforced on Put and
	// EvictExpired).
	MaxAge time.Duration
	// SpillToDisk writes packets evicted from memory to an append-only
	// spill file instead of dropping them, so they stay servable (§2:
	// "writing them to disk once in-memory buffers are full").
	SpillToDisk bool
	// SpillDir is the directory for the spill file (default: os temp dir).
	SpillDir string
	// SpillMaxBytes bounds the bytes reachable on disk (0 = unlimited);
	// the oldest spilled packets are dropped beyond it.
	SpillMaxBytes int64
}

// Ring sizing. Sequence numbers are dense and monotonically increasing
// (they start at 1 and the sender allocates them contiguously), so the hot
// store is a ring indexed by seq&mask. Growth is bounded by a density
// check: the ring only widens while the live span stays within
// ringDensityFactor× the live entry count, so a forged far-ahead sequence
// number lands in the sparse side index instead of ballooning the ring.
const (
	minRingSlots      = 64
	ringDensityFactor = 8
)

// slot is one ring position. seq 0 marks an empty slot (sequence numbers
// start at 1).
type slot struct {
	seq uint64
	ref span
	at  int64 // arrival time, UnixNano (for MaxAge)
}

// sideEntry is a sparse-index entry: below-base backfill fetched for
// serving, or an out-of-window outlier that failed the density check.
type sideEntry struct {
	ref span
	at  int64
}

// Store is the sequence-indexed packet log for one stream. Sequence
// numbers start at 1. Eviction removes the lowest retained sequence number
// first; contiguity tracking (what has been *seen*) is unaffected by
// eviction.
//
// Payload bytes returned by Get alias the store's internal arena: they are
// valid until the next Put or eviction. Callers that retain must copy.
type Store struct {
	ret Retention

	// Hot path: the seq-indexed ring. slots is always a power of two;
	// entries live in the window [lo, lo+len(slots)). lo only advances.
	slots []slot
	lo    uint64
	count int // live ring entries

	// side holds sparse entries outside the ring window (cold path).
	side map[uint64]sideEntry

	arena arena
	bytes int64 // in-memory payload bytes (ring + side)

	// track holds the stream's sequence bookkeeping (contiguity, base
	// watermark, gaps).
	track seqtrack.Tracker
	// spill holds disk-resident evicted packets (nil until first spill).
	spill *spillFile
	// spillErrs counts spill failures (packet dropped instead).
	spillErrs int
}

// NewStore returns an empty store with the given retention policy.
func NewStore(ret Retention) *Store {
	return &Store{ret: ret, arena: newArena()}
}

// slotFor returns the ring slot holding seq, or nil.
func (s *Store) slotFor(seq uint64) *slot {
	if s.slots == nil || seq < s.lo || seq-s.lo >= uint64(len(s.slots)) {
		return nil
	}
	sl := &s.slots[seq&uint64(len(s.slots)-1)]
	if sl.seq != seq {
		return nil
	}
	return sl
}

// inMemory reports in-memory presence (ring or side index).
func (s *Store) inMemory(seq uint64) bool {
	if s.slotFor(seq) != nil {
		return true
	}
	_, ok := s.side[seq]
	return ok
}

// Put logs a packet. It returns false for duplicates (seq already seen) and
// for seq 0, true otherwise. The payload is copied into the store's arena.
// Sequence numbers at or below the base watermark are accepted as backfill
// (stored for serving, without contiguity bookkeeping).
func (s *Store) Put(seq uint64, data []byte, now time.Time) bool {
	if seq == 0 {
		return false
	}
	backfill := seq <= s.track.Base() && s.track.Contacted()
	if backfill {
		if s.inMemory(seq) {
			return false
		}
	} else if !s.track.Mark(seq) {
		return false
	}
	at := now.UnixNano()
	// Backfill sits below the live window by construction; keep it out of
	// the ring so it can never re-base the window under the live stream.
	if !backfill && s.ringPlace(seq) {
		sl := &s.slots[seq&uint64(len(s.slots)-1)]
		*sl = slot{seq: seq, ref: s.arena.alloc(data), at: at}
		s.count++
	} else {
		if s.side == nil {
			s.side = make(map[uint64]sideEntry)
		}
		s.side[seq] = sideEntry{ref: s.arena.alloc(data), at: at}
	}
	s.bytes += int64(len(data))
	s.evict(now)
	return true
}

// ringPlace makes the ring window cover seq, growing within the density
// bound. It reports false when seq belongs in the side index instead.
func (s *Store) ringPlace(seq uint64) bool {
	if s.slots == nil {
		s.slots = make([]slot, minRingSlots)
		s.lo = seq
		return true
	}
	if s.count == 0 {
		// Empty ring: restart the window wherever the stream is now.
		s.lo = seq
		return true
	}
	if seq < s.lo {
		return false
	}
	for seq-s.lo >= uint64(len(s.slots)) {
		span := seq - s.lo + 1
		// Dense streams grow; sparse outliers go to the side index.
		if span > uint64(ringDensityFactor)*uint64(s.count+1) &&
			uint64(len(s.slots)) >= minRingSlots*2 {
			return false
		}
		if s.ret.MaxPackets > 0 && s.count >= s.ret.MaxPackets {
			// Retention is about to drop the oldest packet anyway: advance
			// the window instead of growing.
			s.dropRing(s.ringOldest())
			continue
		}
		s.growRing()
	}
	return true
}

// growRing doubles the ring, re-placing live entries at their new indices.
func (s *Store) growRing() {
	old := s.slots
	oldMask := uint64(len(old) - 1)
	s.slots = make([]slot, len(old)*2)
	mask := uint64(len(s.slots) - 1)
	for seq := s.lo; seq < s.lo+uint64(len(old)); seq++ {
		sl := old[seq&oldMask]
		if sl.seq == seq {
			s.slots[seq&mask] = sl
		}
	}
}

// Get returns the stored payload for seq, from memory or the disk spill.
// The returned bytes alias the store's arena (valid until the next Put or
// eviction); spilled payloads are freshly read from disk.
func (s *Store) Get(seq uint64) ([]byte, bool) {
	if sl := s.slotFor(seq); sl != nil {
		return s.arena.get(sl.ref), true
	}
	if e, ok := s.side[seq]; ok {
		return s.arena.get(e.ref), true
	}
	if s.spill != nil {
		return s.spill.get(seq)
	}
	return nil, false
}

// Has reports whether the payload for seq is servable (in memory or on
// disk).
func (s *Store) Has(seq uint64) bool {
	if s.inMemory(seq) {
		return true
	}
	return s.spill != nil && s.spill.has(seq)
}

// InMemory reports whether seq's payload is held in memory (false for
// spilled or absent packets).
func (s *Store) InMemory(seq uint64) bool { return s.inMemory(seq) }

// SpillErrors returns the number of packets lost to spill-file failures.
func (s *Store) SpillErrors() int { return s.spillErrs }

// Close releases the disk spill file, if any.
func (s *Store) Close() error {
	if s.spill == nil {
		return nil
	}
	sp := s.spill
	s.spill = nil
	return sp.close()
}

// Seen reports whether seq has ever been logged or skipped by the base
// watermark.
func (s *Store) Seen(seq uint64) bool { return s.track.Seen(seq) }

// Evicted reports whether seq was logged and later dropped by retention —
// as opposed to never having been held at all (below the base watermark).
// Spilled packets are not evicted: they remain servable.
func (s *Store) Evicted(seq uint64) bool {
	return seq > s.track.Base() && s.track.Seen(seq) && !s.Has(seq)
}

// SetBase declares that history up to and including seq is deliberately
// skipped (a late joiner starting mid-stream). It applies only on the very
// first contact with the stream.
func (s *Store) SetBase(seq uint64) { s.track.SetBase(seq) }

// Base returns the skip watermark.
func (s *Store) Base() uint64 { return s.track.Base() }

// Advance force-skips history up to seq (see seqtrack.Tracker.Advance):
// the skipped packets count as seen but are not stored.
func (s *Store) Advance(seq uint64) { s.track.Advance(seq) }

// Len returns the number of stored packets.
func (s *Store) Len() int { return s.count + len(s.side) }

// Bytes returns the stored payload bytes.
func (s *Store) Bytes() int64 { return s.bytes }

// Contiguous returns the highest c such that every sequence number in
// [1, c] has been seen (0 when seq 1 is still missing) — the cumulative
// acknowledgement value for LogSyncAck and SourceAck.
func (s *Store) Contiguous() uint64 { return s.track.Contiguous() }

// Highest returns the largest sequence number seen.
func (s *Store) Highest() uint64 { return s.track.Highest() }

// Missing returns up to maxRanges ranges of sequence numbers in
// (Base, hi] that have not been seen. hi of 0 means Highest().
func (s *Store) Missing(hi uint64, maxRanges int) []wire.SeqRange {
	return s.track.Missing(hi, maxRanges)
}

// AppendMissing appends the missing ranges to dst and returns the
// extended slice — the allocation-free form of Missing for hot callers
// that reuse a scratch slice (see seqtrack.Tracker.AppendMissing).
func (s *Store) AppendMissing(dst []wire.SeqRange, hi uint64, maxRanges int) []wire.SeqRange {
	return s.track.AppendMissing(dst, hi, maxRanges)
}

// NextRetained returns the smallest retained (servable) sequence number at
// or above seq, or 0 when nothing at or above seq is held. Cost is bounded
// by the number of live entries, never by the width of evicted or skipped
// gaps — a forged watermark cannot turn a scan over the log into an
// unbounded per-sequence walk.
func (s *Store) NextRetained(seq uint64) uint64 {
	best := uint64(0)
	consider := func(q uint64) {
		if q >= seq && (best == 0 || q < best) {
			best = q
		}
	}
	if s.count > 0 {
		mask := uint64(len(s.slots) - 1)
		start := s.lo
		if seq > start {
			start = seq
		}
		for q := start; q < s.lo+uint64(len(s.slots)); q++ {
			if sl := &s.slots[q&mask]; sl.seq == q {
				consider(q)
				break
			}
		}
	}
	for q := range s.side {
		consider(q)
	}
	if s.spill != nil {
		for q := range s.spill.index {
			consider(q)
		}
	}
	return best
}

// EvictExpired drops packets older than MaxAge.
func (s *Store) EvictExpired(now time.Time) { s.evictAge(now) }

func (s *Store) evict(now time.Time) {
	s.evictAge(now)
	for (s.ret.MaxPackets > 0 && s.Len() > s.ret.MaxPackets) ||
		(s.ret.MaxBytes > 0 && s.bytes > s.ret.MaxBytes) {
		if !s.evictOldest() {
			return
		}
	}
}

// evictAge walks retained packets from the lowest sequence number and
// evicts while they are expired, stopping at the first fresh one. A
// backfilled old sequence number with a recent arrival time therefore
// shields higher (older-by-arrival) packets until it is reached — same
// best-effort property the previous insertion-ordered store had.
func (s *Store) evictAge(now time.Time) {
	if s.ret.MaxAge <= 0 {
		return
	}
	cutoff := now.Add(-s.ret.MaxAge).UnixNano()
	for len(s.side) > 0 {
		seq, e, ok := s.sideOldest()
		if !ok || e.at > cutoff {
			break
		}
		s.dropSide(seq, e)
	}
	for s.count > 0 {
		sl := s.ringOldest()
		if sl.at > cutoff {
			return
		}
		s.dropRing(sl)
	}
}

// ringOldest returns the lowest-seq live ring slot, advancing lo past
// empty positions (amortized O(1): each position is skipped once per
// window pass).
func (s *Store) ringOldest() *slot {
	mask := uint64(len(s.slots) - 1)
	for {
		sl := &s.slots[s.lo&mask]
		if sl.seq == s.lo {
			return sl
		}
		s.lo++
	}
}

// sideOldest returns the lowest-seq side entry (cold path: linear scan of
// the sparse index).
func (s *Store) sideOldest() (uint64, sideEntry, bool) {
	if len(s.side) == 0 {
		return 0, sideEntry{}, false
	}
	var (
		minSeq uint64
		best   sideEntry
		found  bool
	)
	for seq, e := range s.side {
		if !found || seq < minSeq {
			minSeq, best, found = seq, e, true
		}
	}
	return minSeq, best, found
}

// evictOldest drops the lowest retained sequence number (side entries sit
// below the ring window by construction, except out-of-window outliers).
func (s *Store) evictOldest() bool {
	sideSeq, sideE, haveSide := s.sideOldest()
	if haveSide && (s.count == 0 || sideSeq < s.lo) {
		s.dropSide(sideSeq, sideE)
		return true
	}
	if s.count > 0 {
		s.dropRing(s.ringOldest())
		return true
	}
	if haveSide {
		s.dropSide(sideSeq, sideE)
		return true
	}
	return false
}

// dropRing evicts one ring slot (spilling first when enabled).
func (s *Store) dropRing(sl *slot) {
	s.spillOut(sl.seq, s.arena.get(sl.ref))
	s.bytes -= int64(sl.ref.n)
	s.arena.release(sl.ref)
	*sl = slot{}
	s.count--
	s.lo++
}

// dropSide evicts one side entry (spilling first when enabled).
func (s *Store) dropSide(seq uint64, e sideEntry) {
	s.spillOut(seq, s.arena.get(e.ref))
	s.bytes -= int64(e.ref.n)
	s.arena.release(e.ref)
	delete(s.side, seq)
}

// spillOut moves one evicted payload to the disk spill file when enabled.
func (s *Store) spillOut(seq uint64, data []byte) {
	if !s.ret.SpillToDisk {
		return
	}
	if s.spill == nil {
		sp, err := newSpillFile(s.ret.SpillDir, s.ret.SpillMaxBytes)
		if err != nil {
			s.spillErrs++
			return
		}
		s.spill = sp
	}
	if err := s.spill.put(seq, data); err != nil {
		s.spillErrs++
	}
}

// evictInterval derives the periodic retention-tick spacing from a
// policy: a quarter of MaxAge, clamped to [100ms, 1min]; 0 when age-based
// retention is off.
func evictInterval(ret Retention) time.Duration {
	if ret.MaxAge <= 0 {
		return 0
	}
	d := ret.MaxAge / 4
	if d < 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	if d > time.Minute {
		d = time.Minute
	}
	return d
}

// StreamKey identifies one data stream at a logger: the pair of source and
// group.
type StreamKey struct {
	Source wire.SourceID
	Group  wire.GroupID
}

// String renders the key for logs.
func (k StreamKey) String() string {
	return fmt.Sprintf("src=%d/grp=%d", k.Source, k.Group)
}

// KeyOf extracts the stream key from a packet.
func KeyOf(p *wire.Packet) StreamKey {
	return StreamKey{Source: p.Source, Group: p.Group}
}
