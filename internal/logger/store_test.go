package logger

import (
	"os"
	"testing"
	"testing/quick"
	"time"

	"lbrm/internal/wire"
)

var tBase = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestStorePutGet(t *testing.T) {
	s := NewStore(Retention{})
	if !s.Put(1, []byte("a"), tBase) {
		t.Fatal("Put(1) = false")
	}
	if s.Put(1, []byte("dup"), tBase) {
		t.Fatal("duplicate Put accepted")
	}
	if s.Put(0, []byte("zero"), tBase) {
		t.Fatal("Put(0) accepted; sequence numbers start at 1")
	}
	got, ok := s.Get(1)
	if !ok || string(got) != "a" {
		t.Fatalf("Get(1) = %q,%v", got, ok)
	}
	if _, ok := s.Get(2); ok {
		t.Fatal("Get(2) found phantom")
	}
	if s.Len() != 1 || s.Bytes() != 1 {
		t.Fatalf("Len=%d Bytes=%d", s.Len(), s.Bytes())
	}
}

func TestStorePutCopiesPayload(t *testing.T) {
	s := NewStore(Retention{})
	buf := []byte("orig")
	s.Put(1, buf, tBase)
	copy(buf, "XXXX")
	got, _ := s.Get(1)
	if string(got) != "orig" {
		t.Fatal("store aliased caller buffer")
	}
}

func TestStoreContiguityAndMissing(t *testing.T) {
	s := NewStore(Retention{})
	for _, seq := range []uint64{1, 2, 5, 7} {
		s.Put(seq, []byte{byte(seq)}, tBase)
	}
	if s.Contiguous() != 2 {
		t.Fatalf("Contiguous = %d, want 2", s.Contiguous())
	}
	if s.Highest() != 7 {
		t.Fatalf("Highest = %d, want 7", s.Highest())
	}
	miss := s.Missing(0, 0)
	want := []wire.SeqRange{{From: 3, To: 4}, {From: 6, To: 6}}
	if len(miss) != len(want) || miss[0] != want[0] || miss[1] != want[1] {
		t.Fatalf("Missing = %v, want %v", miss, want)
	}
	// Fill the first gap: contiguity advances through the already-seen 5.
	s.Put(3, nil, tBase)
	s.Put(4, nil, tBase)
	if s.Contiguous() != 5 {
		t.Fatalf("Contiguous = %d after fill, want 5", s.Contiguous())
	}
	// Missing beyond highest via explicit hi.
	miss = s.Missing(9, 0)
	want = []wire.SeqRange{{From: 6, To: 6}, {From: 8, To: 9}}
	if len(miss) != 2 || miss[0] != want[0] || miss[1] != want[1] {
		t.Fatalf("Missing(9) = %v, want %v", miss, want)
	}
}

func TestStoreMissingRangeCap(t *testing.T) {
	s := NewStore(Retention{})
	// Odd seqs only → every even seq is its own range.
	for seq := uint64(1); seq <= 41; seq += 2 {
		s.Put(seq, nil, tBase)
	}
	if got := s.Missing(0, 5); len(got) != 5 {
		t.Fatalf("Missing cap: got %d ranges, want 5", len(got))
	}
}

func TestStoreEvictByCount(t *testing.T) {
	s := NewStore(Retention{MaxPackets: 3})
	for seq := uint64(1); seq <= 5; seq++ {
		s.Put(seq, []byte{0}, tBase)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if s.Has(1) || s.Has(2) {
		t.Fatal("oldest packets not evicted")
	}
	if !s.Has(3) || !s.Has(5) {
		t.Fatal("recent packets evicted")
	}
	// Contiguity unaffected by eviction.
	if s.Contiguous() != 5 {
		t.Fatalf("Contiguous = %d, want 5", s.Contiguous())
	}
	if !s.Seen(1) {
		t.Fatal("Seen(1) = false after eviction")
	}
}

func TestStoreEvictByBytes(t *testing.T) {
	s := NewStore(Retention{MaxBytes: 10})
	s.Put(1, make([]byte, 6), tBase)
	s.Put(2, make([]byte, 6), tBase)
	if s.Has(1) {
		t.Fatal("byte budget not enforced")
	}
	if s.Bytes() != 6 {
		t.Fatalf("Bytes = %d, want 6", s.Bytes())
	}
}

func TestStoreEvictByAge(t *testing.T) {
	s := NewStore(Retention{MaxAge: time.Minute})
	s.Put(1, []byte("old"), tBase)
	s.Put(2, []byte("new"), tBase.Add(50*time.Second))
	s.EvictExpired(tBase.Add(70 * time.Second))
	if s.Has(1) {
		t.Fatal("expired packet kept")
	}
	if !s.Has(2) {
		t.Fatal("fresh packet evicted")
	}
	// Age is also enforced on Put.
	s.Put(3, []byte("x"), tBase.Add(3*time.Minute))
	if s.Has(2) {
		t.Fatal("expired packet kept after Put")
	}
}

func TestStreamKey(t *testing.T) {
	p := wire.Packet{Source: 9, Group: 4}
	k := KeyOf(&p)
	if k.Source != 9 || k.Group != 4 {
		t.Fatalf("KeyOf = %+v", k)
	}
	if k.String() == "" {
		t.Fatal("empty String()")
	}
}

// Property: after inserting any permutation of 1..n, contiguity is n and
// nothing is missing.
func TestStoreContiguityProperty(t *testing.T) {
	f := func(perm []byte) bool {
		n := len(perm)
		if n == 0 || n > 64 {
			return true
		}
		// Build a permutation of 1..n from the random bytes.
		order := make([]uint64, n)
		for i := range order {
			order[i] = uint64(i + 1)
		}
		for i := n - 1; i > 0; i-- {
			j := int(perm[i]) % (i + 1)
			order[i], order[j] = order[j], order[i]
		}
		s := NewStore(Retention{})
		for _, seq := range order {
			s.Put(seq, nil, tBase)
		}
		return s.Contiguous() == uint64(n) && len(s.Missing(0, 0)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Missing ranges exactly complement Seen within [1, Highest].
func TestStoreMissingComplementProperty(t *testing.T) {
	f := func(seqs []uint16) bool {
		s := NewStore(Retention{})
		for _, q := range seqs {
			s.Put(uint64(q%200)+1, nil, tBase)
		}
		missing := map[uint64]bool{}
		for _, r := range s.Missing(0, 0) {
			for q := r.From; q <= r.To; q++ {
				missing[q] = true
			}
		}
		for q := uint64(1); q <= s.Highest(); q++ {
			if s.Seen(q) == missing[q] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreSpillToDisk(t *testing.T) {
	s := NewStore(Retention{MaxPackets: 2, SpillToDisk: true, SpillDir: t.TempDir()})
	defer s.Close()
	for seq := uint64(1); seq <= 5; seq++ {
		s.Put(seq, []byte{byte('a' + seq)}, tBase)
	}
	// 1-3 spilled to disk, 4-5 in memory; everything still servable.
	for seq := uint64(1); seq <= 5; seq++ {
		got, ok := s.Get(seq)
		if !ok || got[0] != byte('a'+seq) {
			t.Fatalf("Get(%d) = %v,%v", seq, got, ok)
		}
		if !s.Has(seq) {
			t.Fatalf("Has(%d) = false", seq)
		}
		if s.Evicted(seq) {
			t.Fatalf("Evicted(%d) = true; spilled packets are servable", seq)
		}
	}
	if s.InMemory(1) {
		t.Fatal("seq 1 should be on disk")
	}
	if !s.InMemory(5) {
		t.Fatal("seq 5 should be in memory")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 in-memory", s.Len())
	}
	if s.SpillErrors() != 0 {
		t.Fatalf("spill errors: %d", s.SpillErrors())
	}
}

func TestStoreSpillBoundedIndex(t *testing.T) {
	// Each payload is 10 bytes; the spill index keeps ≤ 25 bytes → at most
	// 2 spilled packets reachable.
	s := NewStore(Retention{MaxPackets: 1, SpillToDisk: true, SpillDir: t.TempDir(),
		SpillMaxBytes: 25})
	defer s.Close()
	payload := make([]byte, 10)
	for seq := uint64(1); seq <= 6; seq++ {
		s.Put(seq, payload, tBase)
	}
	// In memory: 6. Spilled: 1..5 but only the newest ≤2 indexed.
	reachable := 0
	for seq := uint64(1); seq <= 5; seq++ {
		if s.Has(seq) {
			reachable++
			if seq < 4 {
				t.Fatalf("old spilled seq %d still reachable", seq)
			}
		}
	}
	if reachable != 2 {
		t.Fatalf("reachable spilled = %d, want 2", reachable)
	}
	// Beyond-bound packets count as evicted now.
	if !s.Evicted(1) {
		t.Fatal("dropped spill entry should read as evicted")
	}
}

func TestStoreSpillFileRemovedOnClose(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(Retention{MaxPackets: 1, SpillToDisk: true, SpillDir: dir})
	s.Put(1, []byte("a"), tBase)
	s.Put(2, []byte("b"), tBase) // forces a spill → creates the file
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("spill files = %d, want 1", len(entries))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	entries, _ = os.ReadDir(dir)
	if len(entries) != 0 {
		t.Fatal("spill file not removed on Close")
	}
	if err := s.Close(); err != nil {
		t.Fatal("double Close errored")
	}
}

// Property: with spill enabled and any eviction pressure, every previously
// Put packet remains servable (no silent loss) as long as the spill index
// is unbounded.
func TestStoreSpillNoLossProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		s := NewStore(Retention{MaxBytes: 64, SpillToDisk: true, SpillDir: t.TempDir()})
		defer s.Close()
		for i, raw := range sizes {
			seq := uint64(i + 1)
			payload := make([]byte, int(raw%50)+1)
			payload[0] = byte(seq)
			s.Put(seq, payload, tBase)
		}
		for i := range sizes {
			seq := uint64(i + 1)
			got, ok := s.Get(seq)
			if !ok || got[0] != byte(seq) {
				return false
			}
		}
		return s.SpillErrors() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// --- ring-buffer refactor: semantics preserved (table-driven) ---

// TestStoreDuplicateRejection tables the duplicate-rejection rules across
// the live window, the base watermark, and eviction.
func TestStoreDuplicateRejection(t *testing.T) {
	cases := []struct {
		name  string
		setup func(s *Store)
		seq   uint64
		want  bool
	}{
		{"fresh seq", func(s *Store) {}, 1, true},
		{"zero seq", func(s *Store) {}, 0, false},
		{"exact duplicate", func(s *Store) { s.Put(1, []byte("a"), tBase) }, 1, false},
		{"evicted stays rejected", func(s *Store) {
			// MaxPackets 1 → seq 1 evicted by seq 2, but still *seen*.
			for seq := uint64(1); seq <= 2; seq++ {
				s.Put(seq, []byte("x"), tBase)
			}
		}, 1, false},
		{"below base accepted as backfill", func(s *Store) { s.SetBase(10) }, 5, true},
		{"above base accepted", func(s *Store) { s.SetBase(10) }, 11, true},
		{"gap fill accepted", func(s *Store) {
			s.Put(1, nil, tBase)
			s.Put(3, nil, tBase)
		}, 2, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewStore(Retention{MaxPackets: 1})
			defer s.Close()
			tc.setup(s)
			if got := s.Put(tc.seq, []byte("p"), tBase.Add(time.Second)); got != tc.want {
				t.Fatalf("Put(%d) = %v, want %v", tc.seq, got, tc.want)
			}
		})
	}
}

// TestStoreBelowBaseBackfill exercises the sparse side index: a late
// joiner skips history with SetBase, then explicitly fetched pre-join
// packets are stored for serving without contiguity bookkeeping.
func TestStoreBelowBaseBackfill(t *testing.T) {
	s := NewStore(Retention{})
	defer s.Close()
	s.SetBase(100)
	for seq := uint64(101); seq <= 110; seq++ {
		if !s.Put(seq, []byte{byte(seq)}, tBase) {
			t.Fatalf("live Put(%d) rejected", seq)
		}
	}
	// Backfill below the base: accepted, servable, repeat rejected.
	if !s.Put(50, []byte("old"), tBase) {
		t.Fatal("backfill Put(50) rejected")
	}
	if s.Put(50, []byte("dup"), tBase) {
		t.Fatal("duplicate backfill accepted")
	}
	got, ok := s.Get(50)
	if !ok || string(got) != "old" {
		t.Fatalf("Get(50) = %q,%v", got, ok)
	}
	if !s.InMemory(50) {
		t.Fatal("backfill not in memory")
	}
	// Contiguity bookkeeping is unaffected by backfill.
	if s.Contiguous() != 110 {
		t.Fatalf("Contiguous = %d, want 110", s.Contiguous())
	}
	if len(s.Missing(0, 0)) != 0 {
		t.Fatal("backfill created phantom gaps")
	}
	// The live ring keeps working after backfill.
	if !s.Put(111, []byte("live"), tBase) {
		t.Fatal("live Put(111) rejected after backfill")
	}
	if got, ok := s.Get(111); !ok || string(got) != "live" {
		t.Fatalf("Get(111) = %q,%v", got, ok)
	}
	if s.Len() != 12 {
		t.Fatalf("Len = %d, want 12", s.Len())
	}
}

// TestStoreEvictionOrder verifies lowest-sequence-first eviction across
// ring and side entries, including out-of-order arrival.
func TestStoreEvictionOrder(t *testing.T) {
	t.Run("in-order", func(t *testing.T) {
		s := NewStore(Retention{MaxPackets: 2})
		defer s.Close()
		for seq := uint64(1); seq <= 5; seq++ {
			s.Put(seq, []byte{byte(seq)}, tBase)
		}
		for seq := uint64(1); seq <= 3; seq++ {
			if s.Has(seq) {
				t.Fatalf("seq %d not evicted", seq)
			}
		}
		for seq := uint64(4); seq <= 5; seq++ {
			if !s.Has(seq) {
				t.Fatalf("seq %d evicted out of order", seq)
			}
		}
	})
	t.Run("out-of-order arrival", func(t *testing.T) {
		s := NewStore(Retention{MaxPackets: 3})
		defer s.Close()
		for _, seq := range []uint64{5, 2, 8, 3} {
			s.Put(seq, []byte{byte(seq)}, tBase)
		}
		// Lowest seq (2) evicted first regardless of arrival order.
		if s.Has(2) {
			t.Fatal("seq 2 (lowest) not evicted")
		}
		for _, seq := range []uint64{3, 5, 8} {
			if !s.Has(seq) {
				t.Fatalf("seq %d evicted, want lowest-first", seq)
			}
		}
	})
	t.Run("backfill evicted before live window", func(t *testing.T) {
		s := NewStore(Retention{})
		defer s.Close()
		s.SetBase(100)
		s.Put(101, []byte("live"), tBase)
		s.Put(50, []byte("old"), tBase) // side entry, below base
		// Shrink: re-fetch policy caps at 1 packet → next Put evicts the
		// lowest retained seq, which is the backfill.
		s2 := NewStore(Retention{MaxPackets: 2})
		defer s2.Close()
		s2.SetBase(100)
		s2.Put(101, []byte("live"), tBase)
		s2.Put(50, []byte("old"), tBase)
		s2.Put(102, []byte("live2"), tBase)
		if s2.Has(50) {
			t.Fatal("backfill (lowest seq) should evict first")
		}
		if !s2.Has(101) || !s2.Has(102) {
			t.Fatal("live window evicted before backfill")
		}
	})
}

// TestStoreMaxAgeWithSpill verifies MaxAge expiry interacting with
// spill-to-disk: expired packets leave memory but stay servable from disk.
func TestStoreMaxAgeWithSpill(t *testing.T) {
	s := NewStore(Retention{
		MaxAge: time.Minute, SpillToDisk: true, SpillDir: t.TempDir(),
	})
	defer s.Close()
	s.Put(1, []byte("ancient"), tBase)
	s.Put(2, []byte("recent"), tBase.Add(55*time.Second))
	s.EvictExpired(tBase.Add(70 * time.Second))
	if s.InMemory(1) {
		t.Fatal("expired packet still in memory")
	}
	if !s.InMemory(2) {
		t.Fatal("fresh packet expired")
	}
	// Expired-but-spilled packets remain servable and are not "evicted".
	got, ok := s.Get(1)
	if !ok || string(got) != "ancient" {
		t.Fatalf("Get(1) from spill = %q,%v", got, ok)
	}
	if s.Evicted(1) {
		t.Fatal("spilled packet reads as evicted")
	}
	// MaxAge is also enforced on Put, spilling as it expires.
	s.Put(3, []byte("new"), tBase.Add(3*time.Minute))
	if s.InMemory(2) {
		t.Fatal("expired packet kept in memory after Put")
	}
	if got, ok := s.Get(2); !ok || string(got) != "recent" {
		t.Fatalf("Get(2) from spill = %q,%v", got, ok)
	}
	if s.SpillErrors() != 0 {
		t.Fatalf("spill errors: %d", s.SpillErrors())
	}
}

// TestStoreRingOutOfOrderWindow exercises gaps inside the ring window:
// out-of-order arrival within the dense window must not send packets to
// the side index or lose them.
func TestStoreRingOutOfOrderWindow(t *testing.T) {
	s := NewStore(Retention{})
	defer s.Close()
	// Arrive 1..200 with a stride permutation (gaps open and close).
	for _, off := range []uint64{0, 3, 1, 2} {
		for seq := uint64(1) + off; seq <= 200; seq += 4 {
			s.Put(seq, []byte{byte(seq)}, tBase)
		}
	}
	if s.Len() != 200 {
		t.Fatalf("Len = %d, want 200", s.Len())
	}
	if s.Contiguous() != 200 {
		t.Fatalf("Contiguous = %d, want 200", s.Contiguous())
	}
	for seq := uint64(1); seq <= 200; seq++ {
		got, ok := s.Get(seq)
		if !ok || len(got) != 1 || got[0] != byte(seq) {
			t.Fatalf("Get(%d) = %v,%v", seq, got, ok)
		}
	}
}

// TestStoreSparseOutlierSide verifies a forged far-ahead sequence number
// cannot balloon the ring: it lands in the sparse side index, stays
// servable, and the dense stream continues unharmed.
func TestStoreSparseOutlierSide(t *testing.T) {
	s := NewStore(Retention{})
	defer s.Close()
	for seq := uint64(1); seq <= 100; seq++ {
		s.Put(seq, []byte{byte(seq)}, tBase)
	}
	forged := uint64(1 << 40)
	if !s.Put(forged, []byte("forged"), tBase) {
		t.Fatal("outlier rejected")
	}
	if got, ok := s.Get(forged); !ok || string(got) != "forged" {
		t.Fatalf("Get(outlier) = %q,%v", got, ok)
	}
	// The dense stream continues to work.
	for seq := uint64(101); seq <= 300; seq++ {
		if !s.Put(seq, []byte{byte(seq)}, tBase) {
			t.Fatalf("live Put(%d) rejected after outlier", seq)
		}
	}
	for seq := uint64(1); seq <= 300; seq++ {
		if !s.Has(seq) {
			t.Fatalf("Has(%d) = false", seq)
		}
	}
}

// TestStoreWindowRestartAfterDrain: when everything is evicted the window
// re-bases wherever the stream is now (e.g. after a long idle + MaxAge).
func TestStoreWindowRestartAfterDrain(t *testing.T) {
	s := NewStore(Retention{MaxAge: time.Minute})
	defer s.Close()
	for seq := uint64(1); seq <= 10; seq++ {
		s.Put(seq, []byte{byte(seq)}, tBase)
	}
	s.EvictExpired(tBase.Add(time.Hour))
	if s.Len() != 0 {
		t.Fatalf("Len = %d after full expiry, want 0", s.Len())
	}
	// Stream resumes far ahead: ring must restart, not treat it as sparse.
	for seq := uint64(100000); seq <= 100100; seq++ {
		if !s.Put(seq, []byte("r"), tBase.Add(2*time.Hour)) {
			t.Fatalf("Put(%d) rejected after restart", seq)
		}
	}
	if s.Len() != 101 {
		t.Fatalf("Len = %d, want 101", s.Len())
	}
	for seq := uint64(100000); seq <= 100100; seq++ {
		if !s.InMemory(seq) {
			t.Fatalf("InMemory(%d) = false after restart", seq)
		}
	}
}

// TestStoreGetValidUntilNextPut documents the arena aliasing contract:
// bytes returned by Get are stable until the next Put or eviction.
func TestStoreGetValidUntilNextPut(t *testing.T) {
	s := NewStore(Retention{})
	defer s.Close()
	s.Put(1, []byte("first"), tBase)
	got, _ := s.Get(1)
	snapshot := string(got) // copy, per the contract
	s.Put(2, []byte("second"), tBase)
	if snapshot != "first" {
		t.Fatal("copied payload changed")
	}
	// The original seq is still served correctly after more Puts.
	if got, ok := s.Get(1); !ok || string(got) != "first" {
		t.Fatalf("Get(1) = %q,%v", got, ok)
	}
}

// TestStoreNextRetained exercises the gap-jumping helper the sync scan
// relies on: it must find the lowest servable sequence at or above a
// point without walking the (possibly astronomically wide) hole between.
func TestStoreNextRetained(t *testing.T) {
	s := NewStore(Retention{MaxPackets: 4})
	defer s.Close()
	if got := s.NextRetained(1); got != 0 {
		t.Fatalf("empty store NextRetained = %d, want 0", got)
	}
	for seq := uint64(1); seq <= 6; seq++ {
		s.Put(seq, []byte("x"), tBase)
	}
	// MaxPackets 4: seqs 1-2 evicted, 3-6 retained.
	if got := s.NextRetained(1); got != 3 {
		t.Fatalf("NextRetained(1) = %d, want 3", got)
	}
	if got := s.NextRetained(4); got != 4 {
		t.Fatalf("NextRetained(4) = %d, want 4", got)
	}
	if got := s.NextRetained(7); got != 0 {
		t.Fatalf("NextRetained(7) = %d, want 0", got)
	}
	// A forged skip far ahead must not make the lookup walk the gap.
	s.Advance(1 << 60)
	s.Put(1<<60+5, []byte("y"), tBase)
	if got := s.NextRetained(7); got != 1<<60+5 {
		t.Fatalf("NextRetained across wide gap = %d, want %d", got, uint64(1<<60+5))
	}
}
