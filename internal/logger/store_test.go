package logger

import (
	"os"
	"testing"
	"testing/quick"
	"time"

	"lbrm/internal/wire"
)

var tBase = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestStorePutGet(t *testing.T) {
	s := NewStore(Retention{})
	if !s.Put(1, []byte("a"), tBase) {
		t.Fatal("Put(1) = false")
	}
	if s.Put(1, []byte("dup"), tBase) {
		t.Fatal("duplicate Put accepted")
	}
	if s.Put(0, []byte("zero"), tBase) {
		t.Fatal("Put(0) accepted; sequence numbers start at 1")
	}
	got, ok := s.Get(1)
	if !ok || string(got) != "a" {
		t.Fatalf("Get(1) = %q,%v", got, ok)
	}
	if _, ok := s.Get(2); ok {
		t.Fatal("Get(2) found phantom")
	}
	if s.Len() != 1 || s.Bytes() != 1 {
		t.Fatalf("Len=%d Bytes=%d", s.Len(), s.Bytes())
	}
}

func TestStorePutCopiesPayload(t *testing.T) {
	s := NewStore(Retention{})
	buf := []byte("orig")
	s.Put(1, buf, tBase)
	copy(buf, "XXXX")
	got, _ := s.Get(1)
	if string(got) != "orig" {
		t.Fatal("store aliased caller buffer")
	}
}

func TestStoreContiguityAndMissing(t *testing.T) {
	s := NewStore(Retention{})
	for _, seq := range []uint64{1, 2, 5, 7} {
		s.Put(seq, []byte{byte(seq)}, tBase)
	}
	if s.Contiguous() != 2 {
		t.Fatalf("Contiguous = %d, want 2", s.Contiguous())
	}
	if s.Highest() != 7 {
		t.Fatalf("Highest = %d, want 7", s.Highest())
	}
	miss := s.Missing(0, 0)
	want := []wire.SeqRange{{From: 3, To: 4}, {From: 6, To: 6}}
	if len(miss) != len(want) || miss[0] != want[0] || miss[1] != want[1] {
		t.Fatalf("Missing = %v, want %v", miss, want)
	}
	// Fill the first gap: contiguity advances through the already-seen 5.
	s.Put(3, nil, tBase)
	s.Put(4, nil, tBase)
	if s.Contiguous() != 5 {
		t.Fatalf("Contiguous = %d after fill, want 5", s.Contiguous())
	}
	// Missing beyond highest via explicit hi.
	miss = s.Missing(9, 0)
	want = []wire.SeqRange{{From: 6, To: 6}, {From: 8, To: 9}}
	if len(miss) != 2 || miss[0] != want[0] || miss[1] != want[1] {
		t.Fatalf("Missing(9) = %v, want %v", miss, want)
	}
}

func TestStoreMissingRangeCap(t *testing.T) {
	s := NewStore(Retention{})
	// Odd seqs only → every even seq is its own range.
	for seq := uint64(1); seq <= 41; seq += 2 {
		s.Put(seq, nil, tBase)
	}
	if got := s.Missing(0, 5); len(got) != 5 {
		t.Fatalf("Missing cap: got %d ranges, want 5", len(got))
	}
}

func TestStoreEvictByCount(t *testing.T) {
	s := NewStore(Retention{MaxPackets: 3})
	for seq := uint64(1); seq <= 5; seq++ {
		s.Put(seq, []byte{0}, tBase)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if s.Has(1) || s.Has(2) {
		t.Fatal("oldest packets not evicted")
	}
	if !s.Has(3) || !s.Has(5) {
		t.Fatal("recent packets evicted")
	}
	// Contiguity unaffected by eviction.
	if s.Contiguous() != 5 {
		t.Fatalf("Contiguous = %d, want 5", s.Contiguous())
	}
	if !s.Seen(1) {
		t.Fatal("Seen(1) = false after eviction")
	}
}

func TestStoreEvictByBytes(t *testing.T) {
	s := NewStore(Retention{MaxBytes: 10})
	s.Put(1, make([]byte, 6), tBase)
	s.Put(2, make([]byte, 6), tBase)
	if s.Has(1) {
		t.Fatal("byte budget not enforced")
	}
	if s.Bytes() != 6 {
		t.Fatalf("Bytes = %d, want 6", s.Bytes())
	}
}

func TestStoreEvictByAge(t *testing.T) {
	s := NewStore(Retention{MaxAge: time.Minute})
	s.Put(1, []byte("old"), tBase)
	s.Put(2, []byte("new"), tBase.Add(50*time.Second))
	s.EvictExpired(tBase.Add(70 * time.Second))
	if s.Has(1) {
		t.Fatal("expired packet kept")
	}
	if !s.Has(2) {
		t.Fatal("fresh packet evicted")
	}
	// Age is also enforced on Put.
	s.Put(3, []byte("x"), tBase.Add(3*time.Minute))
	if s.Has(2) {
		t.Fatal("expired packet kept after Put")
	}
}

func TestStreamKey(t *testing.T) {
	p := wire.Packet{Source: 9, Group: 4}
	k := KeyOf(&p)
	if k.Source != 9 || k.Group != 4 {
		t.Fatalf("KeyOf = %+v", k)
	}
	if k.String() == "" {
		t.Fatal("empty String()")
	}
}

// Property: after inserting any permutation of 1..n, contiguity is n and
// nothing is missing.
func TestStoreContiguityProperty(t *testing.T) {
	f := func(perm []byte) bool {
		n := len(perm)
		if n == 0 || n > 64 {
			return true
		}
		// Build a permutation of 1..n from the random bytes.
		order := make([]uint64, n)
		for i := range order {
			order[i] = uint64(i + 1)
		}
		for i := n - 1; i > 0; i-- {
			j := int(perm[i]) % (i + 1)
			order[i], order[j] = order[j], order[i]
		}
		s := NewStore(Retention{})
		for _, seq := range order {
			s.Put(seq, nil, tBase)
		}
		return s.Contiguous() == uint64(n) && len(s.Missing(0, 0)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Missing ranges exactly complement Seen within [1, Highest].
func TestStoreMissingComplementProperty(t *testing.T) {
	f := func(seqs []uint16) bool {
		s := NewStore(Retention{})
		for _, q := range seqs {
			s.Put(uint64(q%200)+1, nil, tBase)
		}
		missing := map[uint64]bool{}
		for _, r := range s.Missing(0, 0) {
			for q := r.From; q <= r.To; q++ {
				missing[q] = true
			}
		}
		for q := uint64(1); q <= s.Highest(); q++ {
			if s.Seen(q) == missing[q] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreSpillToDisk(t *testing.T) {
	s := NewStore(Retention{MaxPackets: 2, SpillToDisk: true, SpillDir: t.TempDir()})
	defer s.Close()
	for seq := uint64(1); seq <= 5; seq++ {
		s.Put(seq, []byte{byte('a' + seq)}, tBase)
	}
	// 1-3 spilled to disk, 4-5 in memory; everything still servable.
	for seq := uint64(1); seq <= 5; seq++ {
		got, ok := s.Get(seq)
		if !ok || got[0] != byte('a'+seq) {
			t.Fatalf("Get(%d) = %v,%v", seq, got, ok)
		}
		if !s.Has(seq) {
			t.Fatalf("Has(%d) = false", seq)
		}
		if s.Evicted(seq) {
			t.Fatalf("Evicted(%d) = true; spilled packets are servable", seq)
		}
	}
	if s.InMemory(1) {
		t.Fatal("seq 1 should be on disk")
	}
	if !s.InMemory(5) {
		t.Fatal("seq 5 should be in memory")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 in-memory", s.Len())
	}
	if s.SpillErrors() != 0 {
		t.Fatalf("spill errors: %d", s.SpillErrors())
	}
}

func TestStoreSpillBoundedIndex(t *testing.T) {
	// Each payload is 10 bytes; the spill index keeps ≤ 25 bytes → at most
	// 2 spilled packets reachable.
	s := NewStore(Retention{MaxPackets: 1, SpillToDisk: true, SpillDir: t.TempDir(),
		SpillMaxBytes: 25})
	defer s.Close()
	payload := make([]byte, 10)
	for seq := uint64(1); seq <= 6; seq++ {
		s.Put(seq, payload, tBase)
	}
	// In memory: 6. Spilled: 1..5 but only the newest ≤2 indexed.
	reachable := 0
	for seq := uint64(1); seq <= 5; seq++ {
		if s.Has(seq) {
			reachable++
			if seq < 4 {
				t.Fatalf("old spilled seq %d still reachable", seq)
			}
		}
	}
	if reachable != 2 {
		t.Fatalf("reachable spilled = %d, want 2", reachable)
	}
	// Beyond-bound packets count as evicted now.
	if !s.Evicted(1) {
		t.Fatal("dropped spill entry should read as evicted")
	}
}

func TestStoreSpillFileRemovedOnClose(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(Retention{MaxPackets: 1, SpillToDisk: true, SpillDir: dir})
	s.Put(1, []byte("a"), tBase)
	s.Put(2, []byte("b"), tBase) // forces a spill → creates the file
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("spill files = %d, want 1", len(entries))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	entries, _ = os.ReadDir(dir)
	if len(entries) != 0 {
		t.Fatal("spill file not removed on Close")
	}
	if err := s.Close(); err != nil {
		t.Fatal("double Close errored")
	}
}

// Property: with spill enabled and any eviction pressure, every previously
// Put packet remains servable (no silent loss) as long as the spill index
// is unbounded.
func TestStoreSpillNoLossProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		s := NewStore(Retention{MaxBytes: 64, SpillToDisk: true, SpillDir: t.TempDir()})
		defer s.Close()
		for i, raw := range sizes {
			seq := uint64(i + 1)
			payload := make([]byte, int(raw%50)+1)
			payload[0] = byte(seq)
			s.Put(seq, payload, tBase)
		}
		for i := range sizes {
			seq := uint64(i + 1)
			got, ok := s.Get(seq)
			if !ok || got[0] != byte(seq) {
				return false
			}
		}
		return s.SpillErrors() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
