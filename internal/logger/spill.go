package logger

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// spillFile is the disk half of a spilling Store: an append-only record
// file ([seq u64][len u32][payload]) plus an in-memory offset index. The
// paper (§2) notes that applications "with stronger persistence needs may
// log all packets, writing them to disk once in-memory buffers are full" —
// this implements exactly that policy for the log store.
//
// The file only grows (no compaction); SpillMaxBytes bounds the *indexed*
// bytes, dropping the oldest records from the index when exceeded. A
// logger that needs indefinite history should rotate stores instead.
type spillFile struct {
	f     *os.File
	index map[uint64]spillRef
	order []uint64 // insertion order for bounded-index eviction
	// indexed is the payload byte count still reachable via the index.
	indexed int64
	// writeOff is the current end of file.
	writeOff int64
	maxBytes int64
}

type spillRef struct {
	off  int64
	size uint32
}

// newSpillFile creates the backing file in dir (or the default temp dir
// when dir is empty).
func newSpillFile(dir string, maxBytes int64) (*spillFile, error) {
	f, err := os.CreateTemp(dir, "lbrm-log-*.spill")
	if err != nil {
		return nil, fmt.Errorf("logger: create spill file: %w", err)
	}
	return &spillFile{
		f:        f,
		index:    make(map[uint64]spillRef),
		maxBytes: maxBytes,
	}, nil
}

// put appends one record and indexes it.
func (s *spillFile) put(seq uint64, payload []byte) error {
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[0:], seq)
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(payload)))
	if _, err := s.f.WriteAt(hdr[:], s.writeOff); err != nil {
		return fmt.Errorf("logger: spill write: %w", err)
	}
	if _, err := s.f.WriteAt(payload, s.writeOff+12); err != nil {
		return fmt.Errorf("logger: spill write: %w", err)
	}
	s.index[seq] = spillRef{off: s.writeOff, size: uint32(len(payload))}
	s.order = append(s.order, seq)
	s.writeOff += 12 + int64(len(payload))
	s.indexed += int64(len(payload))
	for s.maxBytes > 0 && s.indexed > s.maxBytes && len(s.order) > 0 {
		oldest := s.order[0]
		s.order = s.order[1:]
		if ref, ok := s.index[oldest]; ok {
			s.indexed -= int64(ref.size)
			delete(s.index, oldest)
		}
	}
	return nil
}

// get reads one record's payload back.
func (s *spillFile) get(seq uint64) ([]byte, bool) {
	ref, ok := s.index[seq]
	if !ok {
		return nil, false
	}
	// Verify the header (defense against file corruption).
	var hdr [12]byte
	if _, err := s.f.ReadAt(hdr[:], ref.off); err != nil {
		return nil, false
	}
	if binary.BigEndian.Uint64(hdr[0:]) != seq ||
		binary.BigEndian.Uint32(hdr[8:]) != ref.size {
		return nil, false
	}
	buf := make([]byte, ref.size)
	if _, err := io.ReadFull(io.NewSectionReader(s.f, ref.off+12, int64(ref.size)), buf); err != nil {
		return nil, false
	}
	return buf, true
}

// has reports whether seq is indexed on disk.
func (s *spillFile) has(seq uint64) bool {
	_, ok := s.index[seq]
	return ok
}

// close removes the backing file.
func (s *spillFile) close() error {
	name := s.f.Name()
	err := s.f.Close()
	if rmErr := os.Remove(name); err == nil {
		err = rmErr
	}
	return err
}
