package netsim

import (
	"fmt"
	"testing"
	"time"

	"lbrm/internal/transport"
	"lbrm/internal/wire"
)

const testGroup = wire.GroupID(7)

// chatter multicasts a fixed number of datagrams on a period and counts
// unicast acks coming back from receivers on other islands.
type chatter struct {
	env    transport.Env
	period time.Duration
	count  int
	ttl    int
	acks   int
}

func (c *chatter) Start(env transport.Env) {
	c.env = env
	if err := env.Join(testGroup); err != nil {
		panic(err)
	}
	sent := 0
	var tick func()
	tick = func() {
		if sent >= c.count {
			return
		}
		payload := fmt.Sprintf("pkt-%d", sent)
		if err := c.env.Multicast(testGroup, c.ttl, []byte(payload)); err != nil {
			panic(err)
		}
		sent++
		c.env.AfterFunc(c.period, tick)
	}
	env.AfterFunc(c.period, tick)
}

func (c *chatter) Recv(from transport.Addr, data []byte) { c.acks++ }

// acker joins the group and unicasts an ack back to every sender it hears,
// exercising the cross-island unicast egress path in the reverse direction.
type acker struct {
	env transport.Env
	got int
}

func (a *acker) Start(env transport.Env) {
	a.env = env
	if err := env.Join(testGroup); err != nil {
		panic(err)
	}
}

func (a *acker) Recv(from transport.Addr, data []byte) {
	a.got++
	if err := a.env.Send(from, []byte("ack")); err != nil {
		panic(err)
	}
}

// buildCluster assembles a 3-island fleet: a chatter on island 0, ackers
// spread over islands 1-2, lossy+jittery cross links so the backbone rng
// stream actually matters to the trace.
func buildCluster(t *testing.T, seed int64) (*Cluster, *chatter, []*acker) {
	t.Helper()
	c := NewCluster(seed, 64)
	var ackers []*acker
	for k := 0; k < 3; k++ {
		up := LinkConfig{Delay: 8 * time.Millisecond, TTLRequired: RegionBoundaryTTL}
		down := LinkConfig{Delay: 8 * time.Millisecond, TTLRequired: RegionBoundaryTTL}
		if k == 1 {
			up.Loss = &Bernoulli{P: 0.15}
			down.Jitter = 2 * time.Millisecond
		}
		isl, err := c.AddIsland(up, down)
		if err != nil {
			t.Fatal(err)
		}
		site := isl.Net.NewSite(SiteParams{Name: fmt.Sprintf("i%d-site", k)})
		if k == 0 {
			continue
		}
		for h := 0; h < 2; h++ {
			a := &acker{}
			ackers = append(ackers, a)
			site.NewHost(fmt.Sprintf("r%d", h), a)
		}
	}
	src := &chatter{period: 50 * time.Millisecond, count: 40, ttl: transport.TTLGlobal}
	c.Island(0).Net.NewSite(SiteParams{Name: "src-site"}).NewHost("src", src)
	return c, src, ackers
}

// runCluster executes one full configuration and returns the fingerprint.
func runCluster(t *testing.T, seed int64, parallel, bulk bool) (uint64, uint64, uint64, int) {
	t.Helper()
	c, src, _ := buildCluster(t, seed)
	c.EnableTraceHash(true)
	c.SetParallel(parallel)
	c.SetBulkDelivery(bulk)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	return c.TraceHash(), c.Events(), c.Deliveries(), src.acks
}

// TestClusterParallelMatchesSequential is the determinism contract: the
// same seed must produce byte-identical traffic traces whether islands run
// one goroutine each or strictly in index order — including lossy and
// jittery backbone links whose rng draws happen at the barrier.
func TestClusterParallelMatchesSequential(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		sh, se, sd, sa := runCluster(t, seed, false, false)
		ph, pe, pd, pa := runCluster(t, seed, true, false)
		if sh != ph {
			t.Fatalf("seed %d: trace hash diverged: seq %016x par %016x", seed, sh, ph)
		}
		if se != pe || sd != pd || sa != pa {
			t.Fatalf("seed %d: counters diverged: seq %d/%d/%d par %d/%d/%d",
				seed, se, sd, sa, pe, pd, pa)
		}
		if sd == 0 {
			t.Fatalf("seed %d: no cross-island deliveries happened; test is vacuous", seed)
		}
		if sa == 0 {
			t.Fatalf("seed %d: no acks crossed back; reverse path untested", seed)
		}
	}
}

// TestClusterBulkMatchesPerMember: bulk leaf delivery is an engine
// optimization, not a model change — the trace hash must be identical with
// it on or off, in both execution modes.
func TestClusterBulkMatchesPerMember(t *testing.T) {
	base, _, bd, _ := runCluster(t, 11, false, false)
	for _, parallel := range []bool{false, true} {
		h, _, d, _ := runCluster(t, 11, parallel, true)
		if h != base {
			t.Fatalf("parallel=%v: bulk trace hash %016x != per-member %016x", parallel, h, base)
		}
		if d != bd {
			t.Fatalf("parallel=%v: bulk deliveries %d != per-member %d", parallel, d, bd)
		}
	}
}

// TestClusterRejectsZeroDelayCross: a zero-delay tier boundary would make
// the conservative lookahead zero, so it is an explicit config error.
func TestClusterRejectsZeroDelayCross(t *testing.T) {
	c := NewCluster(1, 16)
	if _, err := c.AddIsland(LinkConfig{}, LinkConfig{Delay: time.Millisecond}); err == nil {
		t.Fatal("zero up delay accepted")
	}
	if _, err := c.AddIsland(LinkConfig{Delay: time.Millisecond}, LinkConfig{Delay: -time.Second}); err == nil {
		t.Fatal("negative down delay accepted")
	}
}

// TestClusterRejectsLateTopology: islands cannot be added after Start —
// the lookahead and address space are fixed at that point.
func TestClusterRejectsLateTopology(t *testing.T) {
	c := NewCluster(1, 16)
	cfg := LinkConfig{Delay: time.Millisecond}
	for k := 0; k < 2; k++ {
		isl, err := c.AddIsland(cfg, cfg)
		if err != nil {
			t.Fatal(err)
		}
		isl.Net.NewSite(SiteParams{}).NewHost("h", &recorder{})
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddIsland(cfg, cfg); err == nil {
		t.Fatal("AddIsland after Start accepted")
	}
}

// TestClusterRejectsStrideOverflow: an island whose node count spills past
// its NodeID stride would alias another island's address space.
func TestClusterRejectsStrideOverflow(t *testing.T) {
	c := NewCluster(1, 3)
	cfg := LinkConfig{Delay: time.Millisecond}
	isl, err := c.AddIsland(cfg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddIsland(cfg, cfg); err != nil {
		t.Fatal(err)
	}
	s := isl.Net.NewSite(SiteParams{}) // site router consumes no NodeIDs
	for h := 0; h < 4; h++ {
		s.NewHost(fmt.Sprintf("h%d", h), &recorder{})
	}
	if err := c.Start(); err == nil {
		t.Fatal("island with 4 nodes accepted under stride 3")
	}
}

// TestClusterUnroutableUnicast: a send to a NodeID outside every island's
// range, or to an unpopulated slot of the sender's own island, fails
// synchronously, same as a bad address on a single network. A send to an
// unpopulated slot of a remote island is accepted (the sender cannot know)
// but discarded and counted at the exchange barrier instead of being
// silently consumed.
func TestClusterUnroutableUnicast(t *testing.T) {
	c := NewCluster(1, 16)
	cfg := LinkConfig{Delay: time.Millisecond}
	var host *Node
	var remote *recorder
	for k := 0; k < 2; k++ {
		isl, err := c.AddIsland(cfg, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rec := &recorder{}
		h := isl.Net.NewSite(SiteParams{}).NewHost(fmt.Sprintf("h%d", k), rec)
		if k == 0 {
			host = h
		} else {
			remote = rec
		}
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if err := host.Env().Send(Addr{ID: 999}, []byte("x")); err == nil {
		t.Fatal("unicast to unroutable id accepted")
	}
	// In range for the sender's own island but unpopulated: must fail
	// synchronously, not wander up the tree and die at the exchange.
	if err := host.Env().Send(Addr{ID: 5}, []byte("x")); err == nil {
		t.Fatal("unicast to unpopulated same-island id accepted")
	}
	// A valid remote id on the other island is accepted (delivery is
	// asynchronous and lossy, so only the synchronous contract is checked).
	if err := host.Env().Send(Addr{ID: 16}, []byte("x")); err != nil {
		t.Fatalf("unicast to routable remote id rejected: %v", err)
	}
	// In range for the remote island but unpopulated: accepted at the
	// sender, surfaced as a misaddressed discard at the barrier.
	if err := host.Env().Send(Addr{ID: 17}, []byte("x")); err != nil {
		t.Fatalf("unicast to in-range remote id rejected synchronously: %v", err)
	}
	if err := c.Run(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := c.Misaddressed(); got != 1 {
		t.Fatalf("Misaddressed = %d, want 1", got)
	}
	if got := len(remote.got); got != 1 {
		t.Fatalf("remote deliveries = %d, want 1 (the valid send only)", got)
	}
}

// TestClusterTTLScoping: a multicast below the cross-link TTL floor stays
// inside its island even though remote islands have group members.
func TestClusterTTLScoping(t *testing.T) {
	c := NewCluster(1, 16)
	cfg := LinkConfig{Delay: time.Millisecond, TTLRequired: RegionBoundaryTTL}
	var remote *acker
	var src *chatter
	for k := 0; k < 2; k++ {
		isl, err := c.AddIsland(cfg, cfg)
		if err != nil {
			t.Fatal(err)
		}
		site := isl.Net.NewSite(SiteParams{})
		if k == 0 {
			// SiteBoundaryTTL crosses the tail circuit but sits below the
			// cross-link floor.
			src = &chatter{period: 10 * time.Millisecond, count: 5, ttl: SiteBoundaryTTL}
			site.NewHost("src", src)
		} else {
			remote = &acker{}
			site.NewHost("r", remote)
		}
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if remote.got != 0 {
		t.Fatalf("TTL-scoped multicast leaked across islands: remote got %d", remote.got)
	}
	// Control: at TTLGlobal the same topology does deliver remotely.
	c2 := NewCluster(1, 16)
	var remote2 *acker
	for k := 0; k < 2; k++ {
		isl, err := c2.AddIsland(cfg, cfg)
		if err != nil {
			t.Fatal(err)
		}
		site := isl.Net.NewSite(SiteParams{})
		if k == 0 {
			site.NewHost("src", &chatter{period: 10 * time.Millisecond, count: 5, ttl: transport.TTLGlobal})
		} else {
			remote2 = &acker{}
			site.NewHost("r", remote2)
		}
	}
	if err := c2.Start(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if remote2.got == 0 {
		t.Fatal("control run delivered nothing; TTL scoping test is vacuous")
	}
}

// TestClusterNeedsTwoIslands: a one-island cluster is a plain Network and
// is rejected to catch misconfigured fleets early.
func TestClusterNeedsTwoIslands(t *testing.T) {
	c := NewCluster(1, 16)
	if _, err := c.AddIsland(LinkConfig{Delay: time.Millisecond}, LinkConfig{Delay: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err == nil {
		t.Fatal("single-island cluster accepted")
	}
}
