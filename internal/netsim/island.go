// Cluster: parallel same-seed-deterministic execution across independent
// site islands.
//
// A Cluster partitions one simulated internetwork into islands — disjoint
// Networks, each with its own virtual clock, rng and NodeID range — joined
// only at their root routers by cluster-owned cross links (the backbone
// segments). Execution is conservative windowed parallel discrete-event
// simulation: the lookahead Δ is the minimum cross-island latency
// (min up-link delay + min down-link delay), every island runs
// independently for one Δ-window, and a single-threaded barrier exchange
// then routes the window's egress traffic across the backbone. A packet
// leaving island A during window [T, T+Δ) cannot arrive anywhere before
// T+Δ, so no island can ever observe an event out of order.
//
// Determinism: island interiors are sequential and seeded; the exchange
// sorts all cross packets by (departure time, source island, emission
// index) and draws backbone loss/jitter from the cluster rng in that
// order. Parallel and sequential execution therefore produce identical
// traces — verified by FNV trace-hash equality (EnableTraceHash).
package netsim

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Island is one partition of a Cluster: a Network plus its cluster-owned
// cross links.
type Island struct {
	Net *Network
	// up carries egress from the island root onto the backbone; down
	// carries backbone traffic into the island root.
	up, down *Link

	idx    int
	outbox []egressPacket
	hash   uint64
	tap    TapFunc // user tap, chained after the hash fold
}

// UpLink returns the island's root→backbone link.
func (i *Island) UpLink() *Link { return i.up }

// DownLink returns the island's backbone→root link.
func (i *Island) DownLink() *Link { return i.down }

// TraceHash returns the island-local FNV trace hash (EnableTraceHash).
func (i *Island) TraceHash() uint64 { return i.hash }

// Cluster coordinates windowed parallel execution of islands.
type Cluster struct {
	seed    int64
	stride  int
	islands []*Island
	rng     *rand.Rand
	epoch   time.Time
	now     time.Time
	window  time.Duration
	started bool

	parallel  bool
	hashOn    bool
	crossHash uint64
	crossTap  TapFunc

	misaddressed uint64
}

// NewCluster creates an empty cluster. stride is the NodeID range reserved
// per island: island k's nodes get IDs [k*stride, (k+1)*stride).
func NewCluster(seed int64, stride int) *Cluster {
	if stride <= 0 {
		panic("netsim: cluster stride must be positive")
	}
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	return &Cluster{
		seed:   seed,
		stride: stride,
		rng:    rand.New(rand.NewSource(seed ^ 0x5DEECE66D)),
		epoch:  epoch,
		now:    epoch,
	}
}

// AddIsland creates the next island with the given cross-link
// configurations (up: island root → backbone, down: backbone → island
// root). Both directions must have positive delay — the cross-island
// latency is the parallel lookahead, so a zero-delay tier boundary is
// rejected rather than silently serialized. Returns the island's Network
// for topology construction.
func (c *Cluster) AddIsland(up, down LinkConfig) (*Island, error) {
	if c.started {
		return nil, fmt.Errorf("netsim: AddIsland after cluster start")
	}
	if up.Delay <= 0 || down.Delay <= 0 {
		return nil, fmt.Errorf("netsim: cross-island links need positive delay for lookahead (got up %v, down %v)",
			up.Delay, down.Delay)
	}
	idx := len(c.islands)
	if up.Name == "" {
		up.Name = fmt.Sprintf("island%d/cross-up", idx)
	}
	if down.Name == "" {
		down.Name = fmt.Sprintf("island%d/cross-down", idx)
	}
	net := New(c.seed ^ (0x7F4A7C15 * int64(idx+1)))
	net.idBase = idx * c.stride
	isl := &Island{
		Net:  net,
		up:   &Link{cfg: up},
		down: &Link{cfg: down},
		idx:  idx,
	}
	net.egress = func(p egressPacket) { isl.outbox = append(isl.outbox, p) }
	net.remoteValid = func(id NodeID) bool {
		// Ids in this island's own range must resolve locally: reaching
		// here means node(id) was nil, so the slot is unpopulated and the
		// send fails synchronously instead of wandering up to the root
		// only to be discarded at the exchange. Remote ranges are accepted
		// by range alone — whether the slot is populated is checked at the
		// barrier (route), since peeking at another island's node table
		// here would race with its window execution.
		k := int(id) / c.stride
		return int(id) >= 0 && k < len(c.islands) && k != idx
	}
	c.islands = append(c.islands, isl)
	return isl, nil
}

// Islands returns the islands in creation order.
func (c *Cluster) Islands() []*Island { return c.islands }

// Island returns island k.
func (c *Cluster) Island(k int) *Island { return c.islands[k] }

// SetParallel selects parallel (one goroutine per island per window) or
// sequential window execution. Traces are identical either way.
func (c *Cluster) SetParallel(on bool) { c.parallel = on }

// SetBulkDelivery toggles bulk leaf delivery on every island.
func (c *Cluster) SetBulkDelivery(on bool) {
	for _, isl := range c.islands {
		isl.Net.SetBulkDelivery(on)
	}
}

// SetCrossTap installs a tap observing backbone (cross-link) traversals.
func (c *Cluster) SetCrossTap(fn TapFunc) { c.crossTap = fn }

// SetIslandTap installs a user tap on island k, chained after the trace
// hash fold when hashing is enabled.
func (c *Cluster) SetIslandTap(k int, fn TapFunc) {
	isl := c.islands[k]
	isl.tap = fn
	c.installTap(isl)
}

// EnableTraceHash folds every link traversal (island-local and backbone)
// into per-island FNV-1a hashes plus a cross hash, so parallel and
// sequential runs can be compared exactly. Call before Start.
func (c *Cluster) EnableTraceHash(on bool) {
	c.hashOn = on
	for _, isl := range c.islands {
		c.installTap(isl)
	}
}

func (c *Cluster) installTap(isl *Island) {
	user := isl.tap
	if !c.hashOn {
		isl.Net.SetTap(user)
		return
	}
	isl.Net.SetTap(func(ev TapEvent) {
		isl.hash = foldTap(isl.hash, ev)
		if user != nil {
			user(ev)
		}
	})
}

// foldTap mirrors the chaos harness's trace-hash fold (FNV-1a over the
// previous hash and the traversal's observable fields), implemented as
// straight arithmetic so leaving tracing on costs no allocations.
func foldTap(h uint64, ev TapEvent) uint64 {
	if h == 0 {
		h = 1469598103934665603 // FNV offset basis
	}
	f := uint64(14695981039346656037)
	fold := func(v uint64) {
		for i := 0; i < 8; i++ {
			f = (f ^ uint64(byte(v>>(8*i)))) * 1099511628211
		}
	}
	fold(h)
	fold(uint64(ev.Time.UnixNano()))
	fold(uint64(ev.From))
	fold(uint64(ev.To))
	fold(uint64(ev.Size))
	if ev.Dropped {
		fold(1)
	} else {
		fold(0)
	}
	return f
}

// TraceHash folds the per-island hashes (in island order) and the cross
// hash into one run fingerprint.
func (c *Cluster) TraceHash() uint64 {
	h := uint64(0)
	for _, isl := range c.islands {
		h = foldTap(h, TapEvent{Time: c.epoch, Size: int(isl.hash)})
		h ^= isl.hash * 0x9E3779B97F4A7C15
	}
	return h ^ c.crossHash
}

// Now returns the cluster barrier time: every island has executed exactly
// up to this instant.
func (c *Cluster) Now() time.Time { return c.now }

// Window returns the conservative lookahead used between barriers.
func (c *Cluster) Window() time.Duration { return c.window }

// Events returns the total logical event count across islands (see
// Network.LogicalEvents).
func (c *Cluster) Events() uint64 {
	var sum uint64
	for _, isl := range c.islands {
		sum += isl.Net.LogicalEvents()
	}
	return sum
}

// Deliveries returns the total datagrams delivered across islands.
func (c *Cluster) Deliveries() uint64 {
	var sum uint64
	for _, isl := range c.islands {
		sum += isl.Net.Deliveries()
	}
	return sum
}

// Misaddressed returns how many cross-island unicasts named a NodeID in a
// valid range whose island slot is unpopulated (or hairpinned back to the
// source island). Such packets are discarded at the exchange barrier; a
// nonzero count means some handler is sending to addresses that exist in
// no island.
func (c *Cluster) Misaddressed() uint64 { return c.misaddressed }

// PendingTimers returns the total pending events across island clocks.
func (c *Cluster) PendingTimers() int {
	n := 0
	for _, isl := range c.islands {
		n += isl.Net.Clock().Len()
	}
	return n
}

// Start validates the topology and starts every island's handlers. The
// lookahead window is fixed here as min(up delay) + min(down delay) over
// all islands.
func (c *Cluster) Start() error {
	if c.started {
		return nil
	}
	if len(c.islands) < 2 {
		return fmt.Errorf("netsim: cluster needs at least 2 islands, have %d", len(c.islands))
	}
	minUp, minDown := time.Duration(0), time.Duration(0)
	for k, isl := range c.islands {
		if got := len(isl.Net.nodes); got > c.stride {
			return fmt.Errorf("netsim: island %d has %d nodes, exceeding the id stride %d", k, got, c.stride)
		}
		if !isl.Net.Clock().Now().Equal(c.epoch) {
			return fmt.Errorf("netsim: island %d clock moved before cluster start", k)
		}
		if minUp == 0 || isl.up.cfg.Delay < minUp {
			minUp = isl.up.cfg.Delay
		}
		if minDown == 0 || isl.down.cfg.Delay < minDown {
			minDown = isl.down.cfg.Delay
		}
	}
	c.window = minUp + minDown
	c.started = true
	for _, isl := range c.islands {
		isl.Net.Start()
	}
	return nil
}

// Run advances the whole cluster by d: repeated Δ-windows (parallel or
// sequential island execution) separated by barrier exchanges.
func (c *Cluster) Run(d time.Duration) error {
	if !c.started {
		if err := c.Start(); err != nil {
			return err
		}
	}
	end := c.now.Add(d)
	for c.now.Before(end) {
		stepEnd := c.now.Add(c.window)
		if stepEnd.After(end) {
			stepEnd = end
		}
		if c.parallel {
			var wg sync.WaitGroup
			for _, isl := range c.islands {
				wg.Add(1)
				go func(isl *Island) {
					defer wg.Done()
					isl.Net.Clock().RunUntil(stepEnd)
				}(isl)
			}
			wg.Wait()
		} else {
			for _, isl := range c.islands {
				isl.Net.Clock().RunUntil(stepEnd)
			}
		}
		c.now = stepEnd
		c.exchange()
	}
	return nil
}

// crossRef orders one egress packet globally: departure time first, then
// source island, then emission order within the island.
type crossRef struct {
	at     time.Time
	island int
	pos    int
}

// exchange routes every packet that reached an island root during the
// last window across the backbone, in deterministic global order. All
// injected arrivals land at or after the barrier (departure + Δ ≥ barrier),
// so destination islands never receive anything in their past.
func (c *Cluster) exchange() {
	var refs []crossRef
	for k, isl := range c.islands {
		for p := range isl.outbox {
			refs = append(refs, crossRef{at: isl.outbox[p].at, island: k, pos: p})
		}
	}
	if len(refs) == 0 {
		return
	}
	sort.Slice(refs, func(a, b int) bool {
		ra, rb := refs[a], refs[b]
		if !ra.at.Equal(rb.at) {
			return ra.at.Before(rb.at)
		}
		if ra.island != rb.island {
			return ra.island < rb.island
		}
		return ra.pos < rb.pos
	})
	tap := func(ev TapEvent) {
		if c.hashOn {
			c.crossHash = foldTap(c.crossHash, ev)
		}
		if c.crossTap != nil {
			c.crossTap(ev)
		}
	}
	for _, ref := range refs {
		src := c.islands[ref.island]
		pkt := src.outbox[ref.pos]
		c.route(src, pkt, tap)
	}
	for _, isl := range c.islands {
		isl.outbox = isl.outbox[:0]
	}
}

// route carries one egress packet across the backbone: up the source
// island's cross link once (correlated loss), then down into each
// destination island with members (or the unicast target's island).
func (c *Cluster) route(src *Island, pkt egressPacket, tap TapFunc) {
	mcast := pkt.dst < 0
	if mcast && pkt.ttl < src.up.cfg.TTLRequired {
		return
	}
	if !mcast {
		// The sender could only range-check a remote id; the barrier is
		// the first point where the destination island's node table can
		// be read without racing its window. Misaddressed packets are
		// counted and discarded here rather than spending backbone
		// traversals (and rng draws) on something undeliverable.
		dst := c.islands[int(pkt.dst)/c.stride]
		if dst == src || dst.Net.node(pkt.dst) == nil {
			c.misaddressed++
			return
		}
	}
	t, ok, td, dup := src.up.traverse(c.rng, tap, pkt.at, pkt.data, pkt.from, pkt.dst, mcast)
	if dup {
		c.fanOut(src, pkt, td, tap)
	}
	if !ok {
		return
	}
	c.fanOut(src, pkt, t, tap)
}

func (c *Cluster) fanOut(src *Island, pkt egressPacket, t time.Time, tap TapFunc) {
	if pkt.dst >= 0 {
		// route already screened hairpins and unpopulated slots.
		dst := c.islands[int(pkt.dst)/c.stride]
		t2, ok, td, dup := dst.down.traverse(c.rng, tap, t, pkt.data, pkt.from, pkt.dst, false)
		if ok {
			dst.Net.InjectUnicast(t2, pkt.from, pkt.dst, pkt.data)
		}
		if dup {
			dst.Net.InjectUnicast(td, pkt.from, pkt.dst, pkt.data)
		}
		return
	}
	for _, dst := range c.islands {
		if dst == src || dst.Net.Members(pkt.g) == 0 {
			continue
		}
		if pkt.ttl < dst.down.cfg.TTLRequired {
			continue
		}
		t2, ok, td, dup := dst.down.traverse(c.rng, tap, t, pkt.data, pkt.from, -1, true)
		if ok {
			dst.Net.InjectMulticast(t2, pkt.from, pkt.g, pkt.ttl, pkt.data)
		}
		if dup {
			dst.Net.InjectMulticast(td, pkt.from, pkt.g, pkt.ttl, pkt.data)
		}
	}
}
