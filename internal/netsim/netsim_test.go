package netsim

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"lbrm/internal/pcapio"
	"lbrm/internal/transport"
	"lbrm/internal/wire"
)

// recorder is a test handler that logs deliveries.
type recorder struct {
	env  transport.Env
	got  []recorded
	join []wire.GroupID
}

type recorded struct {
	from transport.Addr
	data string
	at   time.Time
}

func (r *recorder) Start(env transport.Env) {
	r.env = env
	for _, g := range r.join {
		if err := env.Join(g); err != nil {
			panic(err)
		}
	}
}

func (r *recorder) Recv(from transport.Addr, data []byte) {
	r.got = append(r.got, recorded{from: from, data: string(data), at: r.env.Now()})
}

func twoSiteNet(t *testing.T) (*Network, *Site, *Site) {
	t.Helper()
	n := New(1)
	s1 := n.NewSite(SiteParams{Name: "s1"})
	s2 := n.NewSite(SiteParams{Name: "s2"})
	return n, s1, s2
}

func TestUnicastSameSiteDelay(t *testing.T) {
	n, s1, _ := twoSiteNet(t)
	a := s1.NewHost("a", &recorder{})
	rb := &recorder{}
	b := s1.NewHost("b", rb)
	n.Start()
	start := n.Clock().Now()
	if err := a.Env().Send(b.Addr(), []byte("hi")); err != nil {
		t.Fatal(err)
	}
	n.RunUntilIdle()
	if len(rb.got) != 1 {
		t.Fatalf("b received %d packets, want 1", len(rb.got))
	}
	// a.up (1ms) + b.down (1ms) = 2ms one way.
	want := start.Add(2 * time.Millisecond)
	if !rb.got[0].at.Equal(want) {
		t.Errorf("delivery at %v, want %v", rb.got[0].at, want)
	}
	if rb.got[0].from.(Addr).ID != a.ID() {
		t.Errorf("from = %v, want %v", rb.got[0].from, a.Addr())
	}
}

func TestUnicastCrossSiteDelay(t *testing.T) {
	n, s1, s2 := twoSiteNet(t)
	a := s1.NewHost("a", &recorder{})
	rb := &recorder{}
	b := s2.NewHost("b", rb)
	n.Start()
	start := n.Clock().Now()
	if err := a.Env().Send(b.Addr(), []byte("hi")); err != nil {
		t.Fatal(err)
	}
	n.RunUntilIdle()
	if len(rb.got) != 1 {
		t.Fatalf("b received %d packets, want 1", len(rb.got))
	}
	// 1ms + 19ms + 19ms + 1ms = 40ms one-way, i.e. the paper's ~80ms RTT.
	want := start.Add(40 * time.Millisecond)
	if !rb.got[0].at.Equal(want) {
		t.Errorf("delivery at %v, want %v", rb.got[0].at, want)
	}
	if d := n.PathDelay(a.ID(), b.ID()); d != 40*time.Millisecond {
		t.Errorf("PathDelay = %v, want 40ms", d)
	}
}

func TestUnicastToSelf(t *testing.T) {
	n, s1, _ := twoSiteNet(t)
	ra := &recorder{}
	a := s1.NewHost("a", ra)
	n.Start()
	if err := a.Env().Send(a.Addr(), []byte("self")); err != nil {
		t.Fatal(err)
	}
	n.RunUntilIdle()
	if len(ra.got) != 1 || ra.got[0].data != "self" {
		t.Fatalf("self delivery failed: %+v", ra.got)
	}
}

func TestUnicastLossSilentlyDrops(t *testing.T) {
	n, s1, s2 := twoSiteNet(t)
	a := s1.NewHost("a", &recorder{})
	rb := &recorder{}
	b := s2.NewHost("b", rb)
	s2.TailDown().SetLoss(&Gate{Down: true})
	n.Start()
	if err := a.Env().Send(b.Addr(), []byte("hi")); err != nil {
		t.Fatal(err)
	}
	n.RunUntilIdle()
	if len(rb.got) != 0 {
		t.Fatalf("b received %d packets through a down link", len(rb.got))
	}
	if c := s2.TailDown().Counters(); c.Drops != 1 || c.Packets != 1 {
		t.Errorf("counters = %+v, want 1 drop of 1 packet", c)
	}
}

func TestMulticastReachesMembersOnly(t *testing.T) {
	const g = wire.GroupID(7)
	n, s1, s2 := twoSiteNet(t)
	src := s1.NewHost("src", &recorder{join: []wire.GroupID{g}})
	rcv1 := &recorder{join: []wire.GroupID{g}}
	rcv2 := &recorder{join: []wire.GroupID{g}}
	out := &recorder{} // not a member
	s1.NewHost("m1", rcv1)
	s2.NewHost("m2", rcv2)
	s2.NewHost("out", out)
	n.Start()
	if err := src.Env().Multicast(g, transport.TTLGlobal, []byte("up")); err != nil {
		t.Fatal(err)
	}
	n.RunUntilIdle()
	if len(rcv1.got) != 1 || len(rcv2.got) != 1 {
		t.Fatalf("members got %d,%d packets, want 1,1", len(rcv1.got), len(rcv2.got))
	}
	if len(out.got) != 0 {
		t.Fatal("non-member received multicast")
	}
	// Sender must not hear its own multicast.
	if got := src.Received(); got != 0 {
		t.Fatalf("sender looped back %d packets", got)
	}
}

func TestMulticastDelaysPerReceiver(t *testing.T) {
	const g = wire.GroupID(7)
	n, s1, s2 := twoSiteNet(t)
	src := s1.NewHost("src", &recorder{})
	local := &recorder{join: []wire.GroupID{g}}
	remote := &recorder{join: []wire.GroupID{g}}
	s1.NewHost("local", local)
	s2.NewHost("remote", remote)
	n.Start()
	start := n.Clock().Now()
	src.Env().Multicast(g, transport.TTLGlobal, []byte("x"))
	n.RunUntilIdle()
	if !local.got[0].at.Equal(start.Add(2 * time.Millisecond)) {
		t.Errorf("local at %v, want +2ms", local.got[0].at.Sub(start))
	}
	if !remote.got[0].at.Equal(start.Add(40 * time.Millisecond)) {
		t.Errorf("remote at %v, want +40ms", remote.got[0].at.Sub(start))
	}
}

func TestMulticastTTLSiteScoping(t *testing.T) {
	const g = wire.GroupID(9)
	n, s1, s2 := twoSiteNet(t)
	src := s1.NewHost("src", &recorder{})
	local := &recorder{join: []wire.GroupID{g}}
	remote := &recorder{join: []wire.GroupID{g}}
	s1.NewHost("local", local)
	s2.NewHost("remote", remote)
	n.Start()
	src.Env().Multicast(g, transport.TTLSite, []byte("scoped"))
	n.RunUntilIdle()
	if len(local.got) != 1 {
		t.Fatal("site-scoped multicast did not reach local member")
	}
	if len(remote.got) != 0 {
		t.Fatal("site-scoped multicast crossed the tail circuit")
	}
	// Tail-up must not even have been attempted (no spurious traffic).
	if c := s1.TailUp().Counters(); c.Packets != 0 {
		t.Errorf("tail-up saw %d packets for a site-scoped multicast", c.Packets)
	}
}

// TestMulticastCorrelatedLoss is the key property for §2.2.2: one loss
// decision per link means a tail-circuit drop affects every receiver at
// the site at once.
func TestMulticastCorrelatedLoss(t *testing.T) {
	const g = wire.GroupID(5)
	n := New(42)
	s1 := n.NewSite(SiteParams{Name: "s1"})
	s2 := n.NewSite(SiteParams{Name: "s2"})
	src := s1.NewHost("src", &recorder{})
	const perSite = 20
	var receivers []*recorder
	for i := 0; i < perSite; i++ {
		r := &recorder{join: []wire.GroupID{g}}
		receivers = append(receivers, r)
		s2.NewHost(fmt.Sprintf("r%d", i), r)
	}
	// Drop exactly the first packet crossing the tail-down link.
	s2.TailDown().SetLoss(&FirstN{N: 1})
	n.Start()
	src.Env().Multicast(g, transport.TTLGlobal, []byte("p1"))
	n.RunUntilIdle()
	src.Env().Multicast(g, transport.TTLGlobal, []byte("p2"))
	n.RunUntilIdle()
	for i, r := range receivers {
		if len(r.got) != 1 || r.got[0].data != "p2" {
			t.Fatalf("receiver %d got %+v, want exactly p2", i, r.got)
		}
	}
	if c := s2.TailDown().Counters(); c.Drops != 1 || c.Packets != 2 {
		t.Errorf("tail-down counters = %+v, want 2 packets 1 drop (one decision per link)", c)
	}
}

func TestLeaveStopsDelivery(t *testing.T) {
	const g = wire.GroupID(3)
	n, s1, _ := twoSiteNet(t)
	src := s1.NewHost("src", &recorder{})
	r := &recorder{join: []wire.GroupID{g}}
	m := s1.NewHost("m", r)
	n.Start()
	src.Env().Multicast(g, transport.TTLGlobal, []byte("one"))
	n.RunUntilIdle()
	m.Env().Leave(g)
	src.Env().Multicast(g, transport.TTLGlobal, []byte("two"))
	n.RunUntilIdle()
	if len(r.got) != 1 || r.got[0].data != "one" {
		t.Fatalf("got %+v, want only packet one", r.got)
	}
	if n.Members(g) != 0 {
		t.Errorf("Members = %d after leave, want 0", n.Members(g))
	}
}

func TestSerializationRateQueueing(t *testing.T) {
	n := New(1)
	// 8000 bit/s link: a 100-byte packet takes 100ms to serialize.
	s := n.NewSite(SiteParams{Name: "s", TailRate: 8000, TailDelay: 10 * time.Millisecond})
	s2 := n.NewSite(SiteParams{Name: "d"})
	a := s.NewHost("a", &recorder{})
	rb := &recorder{}
	b := s2.NewHost("b", rb)
	n.Start()
	start := n.Clock().Now()
	payload := make([]byte, 100)
	a.Env().Send(b.Addr(), payload)
	a.Env().Send(b.Addr(), payload)
	n.RunUntilIdle()
	if len(rb.got) != 2 {
		t.Fatalf("received %d, want 2", len(rb.got))
	}
	// First: 1ms LAN + (100ms tx + 10ms) tail + 19ms tail-down + 1ms LAN = 131ms.
	// Second queues behind the first on tail-up: +100ms.
	d0 := rb.got[0].at.Sub(start)
	d1 := rb.got[1].at.Sub(start)
	if d0 != 131*time.Millisecond {
		t.Errorf("first delivery after %v, want 131ms", d0)
	}
	if d1-d0 != 100*time.Millisecond {
		t.Errorf("spacing %v, want 100ms serialization gap", d1-d0)
	}
}

func TestRegionTTLScoping(t *testing.T) {
	const g = wire.GroupID(11)
	n := New(1)
	region := n.NewRegion("west", 5*time.Millisecond)
	sIn := n.NewSite(SiteParams{Name: "in", Parent: region})
	sIn2 := n.NewSite(SiteParams{Name: "in2", Parent: region})
	sOut := n.NewSite(SiteParams{Name: "out"})
	src := sIn.NewHost("src", &recorder{})
	inRegion := &recorder{join: []wire.GroupID{g}}
	outRegion := &recorder{join: []wire.GroupID{g}}
	sIn2.NewHost("a", inRegion)
	sOut.NewHost("b", outRegion)
	n.Start()
	src.Env().Multicast(g, transport.TTLRegion, []byte("regional"))
	n.RunUntilIdle()
	if len(inRegion.got) != 1 {
		t.Fatal("region-scoped multicast did not reach sibling site in region")
	}
	if len(outRegion.got) != 0 {
		t.Fatal("region-scoped multicast escaped the region")
	}
	src.Env().Multicast(g, transport.TTLGlobal, []byte("global"))
	n.RunUntilIdle()
	if len(outRegion.got) != 1 {
		t.Fatal("global multicast did not cross the region boundary")
	}
}

func TestOutagesWindow(t *testing.T) {
	n, s1, s2 := twoSiteNet(t)
	a := s1.NewHost("a", &recorder{})
	rb := &recorder{}
	b := s2.NewHost("b", rb)
	start := n.Clock().Now()
	s2.TailDown().SetLoss(&Outages{Windows: []Window{{
		Start: start.Add(50 * time.Millisecond),
		End:   start.Add(150 * time.Millisecond),
	}}})
	n.Start()
	send := func() { a.Env().Send(b.Addr(), []byte("x")) }
	send()                           // tail-down at t=20ms: passes
	n.RunFor(40 * time.Millisecond)  // now t=40
	send()                           // tail-down at t=60ms: dropped
	n.RunFor(140 * time.Millisecond) // now t=180
	send()                           // tail-down at t=200ms: passes
	n.RunUntilIdle()
	if len(rb.got) != 2 {
		t.Fatalf("received %d, want 2 (middle packet dropped in outage)", len(rb.got))
	}
}

func TestBernoulliLossRate(t *testing.T) {
	n := New(7)
	s1 := n.NewSite(SiteParams{Name: "s1"})
	s2 := n.NewSite(SiteParams{Name: "s2", TailDownLoss: Bernoulli{P: 0.3}})
	a := s1.NewHost("a", &recorder{})
	rb := &recorder{}
	b := s2.NewHost("b", rb)
	n.Start()
	const total = 5000
	for i := 0; i < total; i++ {
		a.Env().Send(b.Addr(), []byte("x"))
		n.RunFor(time.Millisecond)
	}
	n.RunUntilIdle()
	rate := 1 - float64(len(rb.got))/total
	if rate < 0.27 || rate > 0.33 {
		t.Errorf("observed loss rate %.3f, want ≈0.30", rate)
	}
}

func TestGilbertElliottBurstiness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ge := &GilbertElliott{PGoodToBad: 0.01, PBadToGood: 0.2, LossGood: 0, LossBad: 1}
	now := time.Now()
	var drops, runs int
	prev := false
	const total = 100000
	for i := 0; i < total; i++ {
		d := ge.Drop(now, rng)
		if d {
			drops++
			if !prev {
				runs++
			}
		}
		prev = d
	}
	lossRate := float64(drops) / total
	// Steady state bad fraction = p/(p+q) = 0.01/0.21 ≈ 0.0476.
	if lossRate < 0.03 || lossRate > 0.07 {
		t.Errorf("GE loss rate %.4f, want ≈0.048", lossRate)
	}
	meanBurst := float64(drops) / float64(runs)
	// Mean burst length = 1/PBadToGood = 5.
	if meanBurst < 3.5 || meanBurst > 6.5 {
		t.Errorf("mean burst length %.2f, want ≈5", meanBurst)
	}
}

func TestDropSeqs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := &DropSeqs{Indices: map[int]bool{2: true, 4: true}}
	var got []bool
	for i := 0; i < 5; i++ {
		got = append(got, d.Drop(time.Now(), rng))
	}
	want := []bool{false, true, false, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DropSeqs pattern = %v, want %v", got, want)
		}
	}
}

func TestParseAddrRoundTrip(t *testing.T) {
	a := Addr{ID: 42}
	got, err := ParseAddr(a.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Errorf("round trip = %v, want %v", got, a)
	}
	for _, bad := range []string{"", "udp:1", "sim:", "sim:x"} {
		if _, err := ParseAddr(bad); err == nil {
			t.Errorf("ParseAddr(%q) accepted", bad)
		}
	}
}

func TestForeignAddrRejected(t *testing.T) {
	n, s1, _ := twoSiteNet(t)
	a := s1.NewHost("a", &recorder{})
	n.Start()
	if err := a.Env().Send(fakeAddr{}, []byte("x")); err == nil {
		t.Fatal("Send to foreign address succeeded")
	}
}

type fakeAddr struct{}

func (fakeAddr) Network() string { return "fake" }
func (fakeAddr) String() string  { return "fake" }

// Property: identical seeds yield identical delivery traces.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) []string {
		const g = wire.GroupID(1)
		n := New(seed)
		s1 := n.NewSite(SiteParams{Name: "s1", TailDownLoss: Bernoulli{P: 0.2}})
		s2 := n.NewSite(SiteParams{Name: "s2", TailDownLoss: Bernoulli{P: 0.2}})
		src := s1.NewHost("src", &recorder{})
		var rs []*recorder
		for i := 0; i < 5; i++ {
			r := &recorder{join: []wire.GroupID{g}}
			rs = append(rs, r)
			if i < 2 {
				s1.NewHost("", r)
			} else {
				s2.NewHost("", r)
			}
		}
		n.Start()
		for i := 0; i < 50; i++ {
			src.Env().Multicast(g, transport.TTLGlobal, []byte{byte(i)})
			n.RunFor(10 * time.Millisecond)
		}
		n.RunUntilIdle()
		var trace []string
		for i, r := range rs {
			for _, rec := range r.got {
				trace = append(trace, fmt.Sprintf("%d:%x@%v", i, rec.data, rec.at.UnixNano()))
			}
		}
		return trace
	}
	a, b := run(99), run(99)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %s vs %s", i, a[i], b[i])
		}
	}
	if c := run(100); len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical lossy traces (suspicious)")
		}
	}
}

// Property: for random site/host layouts, PathDelay is symmetric and the
// delivery time of a lossless unicast equals PathDelay.
func TestPathDelayConsistencyProperty(t *testing.T) {
	f := func(seed int64, nSitesRaw, aRaw, bRaw uint8) bool {
		nSites := int(nSitesRaw%4) + 1
		n := New(seed)
		var hosts []*Node
		var recs []*recorder
		for i := 0; i < nSites; i++ {
			s := n.NewSite(SiteParams{
				Name:      fmt.Sprintf("s%d", i),
				TailDelay: time.Duration(int(seed&0xF)+1) * time.Millisecond,
			})
			for j := 0; j < 3; j++ {
				r := &recorder{}
				recs = append(recs, r)
				hosts = append(hosts, s.NewHost("", r))
			}
		}
		a := hosts[int(aRaw)%len(hosts)]
		b := hosts[int(bRaw)%len(hosts)]
		if a == b {
			return true
		}
		if n.PathDelay(a.ID(), b.ID()) != n.PathDelay(b.ID(), a.ID()) {
			return false
		}
		n.Start()
		start := n.Clock().Now()
		a.Env().Send(b.Addr(), []byte("x"))
		n.RunUntilIdle()
		rb := recs[int(bRaw)%len(hosts)]
		return len(rb.got) == 1 &&
			rb.got[0].at.Sub(start) == n.PathDelay(a.ID(), b.ID())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHandlerBufferIsCopied(t *testing.T) {
	// The env must copy the caller's buffer so reuse doesn't corrupt
	// in-flight packets.
	n, s1, _ := twoSiteNet(t)
	a := s1.NewHost("a", &recorder{})
	rb := &recorder{}
	b := s1.NewHost("b", rb)
	n.Start()
	buf := []byte("original")
	a.Env().Send(b.Addr(), buf)
	copy(buf, "CLOBBER!")
	n.RunUntilIdle()
	if rb.got[0].data != "original" {
		t.Fatalf("in-flight packet corrupted by sender buffer reuse: %q", rb.got[0].data)
	}
}

// TestMulticastPrunesMemberlessSubtrees: tail circuits of sites with no
// group members must carry no multicast traffic (IGMP-style pruning) —
// the property that makes the §7 retransmission channel cheap for
// healthy sites.
func TestMulticastPrunesMemberlessSubtrees(t *testing.T) {
	const g = wire.GroupID(13)
	n := New(1)
	s1 := n.NewSite(SiteParams{Name: "s1"})
	s2 := n.NewSite(SiteParams{Name: "s2"})
	s3 := n.NewSite(SiteParams{Name: "s3"})
	src := s1.NewHost("src", &recorder{})
	member := &recorder{join: []wire.GroupID{g}}
	s2.NewHost("m", member)
	s3.NewHost("nonmember", &recorder{})
	n.Start()
	src.Env().Multicast(g, transport.TTLGlobal, []byte("pruned"))
	n.RunUntilIdle()
	if len(member.got) != 1 {
		t.Fatal("member did not receive")
	}
	if c := s3.TailDown().Counters(); c.Packets != 0 {
		t.Fatalf("member-less site's tail carried %d packets, want 0", c.Packets)
	}
	if c := s2.TailDown().Counters(); c.Packets != 1 {
		t.Fatalf("member site's tail carried %d packets, want 1", c.Packets)
	}
	// Membership changes re-grow the tree.
	late := &recorder{}
	node := s3.NewHost("late", late)
	node.Env().Join(g)
	src.Env().Multicast(g, transport.TTLGlobal, []byte("regrown"))
	n.RunUntilIdle()
	if len(late.got) != 1 {
		t.Fatal("late joiner did not receive after join")
	}
	if c := s3.TailDown().Counters(); c.Packets != 1 {
		t.Fatalf("joined site's tail carried %d packets, want 1", c.Packets)
	}
}

func TestLinkJitterSpreadsArrivals(t *testing.T) {
	n := New(9)
	s1 := n.NewSite(SiteParams{Name: "s1"})
	s2 := n.NewSite(SiteParams{Name: "s2", TailJitter: 10 * time.Millisecond})
	a := s1.NewHost("a", &recorder{})
	rb := &recorder{}
	b := s2.NewHost("b", rb)
	n.Start()
	base := n.PathDelay(a.ID(), b.ID())
	var sentAt []time.Time
	for i := 0; i < 200; i++ {
		sentAt = append(sentAt, n.Clock().Now())
		a.Env().Send(b.Addr(), []byte("x"))
		n.RunFor(time.Millisecond)
	}
	n.RunUntilIdle()
	if len(rb.got) != 200 {
		t.Fatalf("received %d", len(rb.got))
	}
	// One jittery link on the path: latency ∈ [base, base+10ms); expect
	// visible spread.
	var min, max time.Duration = time.Hour, 0
	for i, rec := range rb.got {
		d := rec.at.Sub(sentAt[i])
		if d < base || d >= base+10*time.Millisecond {
			t.Fatalf("latency %v outside [%v, %v+10ms)", d, base, base)
		}
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if max-min < 5*time.Millisecond {
		t.Fatalf("jitter spread %v, want > 5ms", max-min)
	}
}

func TestPcapTapCapturesWire(t *testing.T) {
	const g = wire.GroupID(7)
	var buf bytes.Buffer
	pw, err := pcapio.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n, s1, s2 := twoSiteNet(t)
	src := s1.NewHost("src", &recorder{})
	member := &recorder{join: []wire.GroupID{g}}
	dst := s2.NewHost("m", member)
	n.SetTap(PcapTap(pw, "s1/tail-up", nil))
	n.Start()
	// A real LBRM packet, so the tap can name the multicast group.
	data, err := (&wire.Packet{Type: wire.TypeData, Source: 1, Group: g, Seq: 1,
		Payload: []byte{1, 2, 3}}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	src.Env().Multicast(g, transport.TTLGlobal, data)
	n.RunUntilIdle()
	src.Env().Send(dst.Addr(), []byte{9, 9})
	n.RunUntilIdle()
	if pw.Count() != 2 {
		t.Fatalf("captured %d frames on the tapped wire, want 2", pw.Count())
	}
	r, err := pcapio.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	first, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if first.Dst != [4]byte{239, 77, 0, 7} {
		t.Fatalf("multicast dst = %v, want 239.77.0.7", first.Dst)
	}
	second, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if second.Dst != [4]byte{10, 77, 0, byte(dst.ID())} {
		t.Fatalf("unicast dst = %v", second.Dst)
	}
	if len(second.Payload) != 2 {
		t.Fatalf("payload = %v", second.Payload)
	}
}
