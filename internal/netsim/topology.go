package netsim

import (
	"fmt"
	"time"

	"lbrm/internal/transport"
)

// Default topology parameters, chosen to reproduce the paper's measured
// distances (§2.2.2): a host-to-host RTT within a site of ~4 ms and an
// across-WAN RTT of ~80 ms.
const (
	// DefaultLANDelay is the one-way host↔site-router delay.
	DefaultLANDelay = time.Millisecond
	// DefaultTailDelay is the one-way site-router↔backbone delay.
	DefaultTailDelay = 19 * time.Millisecond
	// SiteBoundaryTTL is the TTL a multicast packet needs to cross a tail
	// circuit. transport.TTLSite is below it, so site-scoped re-multicasts
	// stay local.
	SiteBoundaryTTL = transport.TTLSite + 1
	// RegionBoundaryTTL is the TTL needed to cross a region boundary when
	// a region tier is present (multi-level hierarchy, paper §7).
	RegionBoundaryTTL = transport.TTLRegion + 1
)

// SiteParams configures one site (LAN + tail circuit).
type SiteParams struct {
	// Name labels the site; defaults to "siteN".
	Name string
	// TailDelay is the one-way tail-circuit propagation delay
	// (DefaultTailDelay if zero).
	TailDelay time.Duration
	// TailRate is the tail-circuit serialization rate in bits/s (0 = ∞).
	// A T1 is 1_544_000.
	TailRate int64
	// TailUpLoss / TailDownLoss are the tail circuit loss models.
	TailUpLoss, TailDownLoss LossModel
	// LANDelay is the one-way host↔router delay (DefaultLANDelay if zero).
	LANDelay time.Duration
	// TailJitter adds uniform random delay in [0, TailJitter) per packet
	// on the tail circuit.
	TailJitter time.Duration
	// Parent places the site under a specific router (region tier);
	// nil means directly under the backbone.
	Parent *Router
}

// Site is a convenience wrapper for a site router plus its LAN defaults.
type Site struct {
	net      *Network
	Router   *Router
	lanDelay time.Duration
	name     string
	hosts    int
}

// NewSite creates a site: a router under the backbone (or p.Parent) whose
// tail circuit carries the configured delay/rate/loss and requires
// SiteBoundaryTTL for multicast.
func (n *Network) NewSite(p SiteParams) *Site {
	if p.Name == "" {
		p.Name = fmt.Sprintf("site%d", len(n.routers))
	}
	if p.TailDelay == 0 {
		p.TailDelay = DefaultTailDelay
	}
	if p.LANDelay == 0 {
		p.LANDelay = DefaultLANDelay
	}
	up := LinkConfig{
		Name:        p.Name + "/tail-up",
		Delay:       p.TailDelay,
		Jitter:      p.TailJitter,
		Rate:        p.TailRate,
		Loss:        p.TailUpLoss,
		TTLRequired: SiteBoundaryTTL,
	}
	down := LinkConfig{
		Name:        p.Name + "/tail-down",
		Delay:       p.TailDelay,
		Jitter:      p.TailJitter,
		Rate:        p.TailRate,
		Loss:        p.TailDownLoss,
		TTLRequired: SiteBoundaryTTL,
	}
	r := n.NewRouter(p.Parent, p.Name, up, down)
	return &Site{net: n, Router: r, lanDelay: p.LANDelay, name: p.Name}
}

// TailUp returns the site's outbound tail-circuit link.
func (s *Site) TailUp() *Link { return s.Router.up }

// TailDown returns the site's inbound tail-circuit link — the bottleneck
// where the paper's correlated losses happen.
func (s *Site) TailDown() *Link { return s.Router.down }

// Name returns the site's label.
func (s *Site) Name() string { return s.name }

// NewHost attaches a host to the site LAN running handler h.
func (s *Site) NewHost(name string, h transport.Handler) *Node {
	if name == "" {
		name = fmt.Sprintf("%s/host%d", s.name, s.hosts)
	}
	s.hosts++
	up := LinkConfig{Name: name + "/up", Delay: s.lanDelay, TTLRequired: transport.TTLLAN}
	down := LinkConfig{Name: name + "/down", Delay: s.lanDelay, TTLRequired: transport.TTLLAN}
	return s.net.NewNode(s.Router, name, up, down, h)
}

// NewHostLossy attaches a host whose last-hop downlink has the given loss
// model — the "crying baby" receiver behind a poor connection (§6).
func (s *Site) NewHostLossy(name string, h transport.Handler, downLoss LossModel) *Node {
	node := s.NewHost(name, h)
	node.down.SetLoss(downLoss)
	return node
}

// NewRegionHost attaches a host directly to a router — e.g. a regional
// logger co-located at the region's POP rather than behind any site tail
// circuit, so its recovery traffic never competes with a site's
// bottleneck link.
func (n *Network) NewRegionHost(r *Router, name string, h transport.Handler) *Node {
	up := LinkConfig{Name: name + "/up", Delay: DefaultLANDelay, TTLRequired: transport.TTLLAN}
	down := LinkConfig{Name: name + "/down", Delay: DefaultLANDelay, TTLRequired: transport.TTLLAN}
	return n.NewNode(r, name, up, down, h)
}

// NewRegion creates an intermediate router tier under the backbone; sites
// created with Parent pointing at it sit behind an extra WAN hop. Multicast
// packets need RegionBoundaryTTL to leave the region.
func (n *Network) NewRegion(name string, delay time.Duration) *Router {
	if delay == 0 {
		delay = 5 * time.Millisecond
	}
	up := LinkConfig{Name: name + "/up", Delay: delay, TTLRequired: RegionBoundaryTTL}
	down := LinkConfig{Name: name + "/down", Delay: delay, TTLRequired: RegionBoundaryTTL}
	return n.NewRouter(nil, name, up, down)
}
