package netsim

import (
	"fmt"
	"testing"
	"time"

	"lbrm/internal/transport"
	"lbrm/internal/wire"
)

// timerHandler schedules one timer at Start and counts its firings; used to
// check that a crash suppresses the dead incarnation's timers.
type timerHandler struct {
	delay time.Duration
	fired int
	env   transport.Env
}

func (h *timerHandler) Start(env transport.Env) {
	h.env = env
	env.AfterFunc(h.delay, func() { h.fired++ })
}

func (h *timerHandler) Recv(transport.Addr, []byte) {}

func TestCrashDropsInFlightPackets(t *testing.T) {
	n, s1, s2 := twoSiteNet(t)
	a := s1.NewHost("a", &recorder{})
	rb := &recorder{}
	b := s2.NewHost("b", rb)
	n.Start()
	a.Env().Send(b.Addr(), []byte("doomed")) // 40ms one-way
	n.RunFor(10 * time.Millisecond)
	b.Crash()
	n.RunUntilIdle()
	if len(rb.got) != 0 {
		t.Fatalf("crashed node received %d packets", len(rb.got))
	}
	if !b.Crashed() {
		t.Fatal("Crashed() = false after Crash")
	}
	if b.Env() != nil {
		t.Fatal("Env() non-nil while crashed")
	}

	// Packets sent while the node is down also vanish.
	a.Env().Send(b.Addr(), []byte("into the void"))
	n.RunUntilIdle()

	// A restarted incarnation receives new traffic but nothing older.
	rb2 := &recorder{}
	b.Restart(rb2)
	a.Env().Send(b.Addr(), []byte("fresh"))
	n.RunUntilIdle()
	if len(rb.got) != 0 {
		t.Fatalf("old handler revived: %+v", rb.got)
	}
	if len(rb2.got) != 1 || rb2.got[0].data != "fresh" {
		t.Fatalf("restarted node got %+v, want exactly \"fresh\"", rb2.got)
	}
}

func TestCrashRestartDropsPacketsInFlightAcrossReboot(t *testing.T) {
	// A packet in flight when the node crashes must not be delivered to the
	// restarted incarnation even if it "arrives" after the restart.
	n, s1, s2 := twoSiteNet(t)
	a := s1.NewHost("a", &recorder{})
	rb := &recorder{}
	b := s2.NewHost("b", rb)
	n.Start()
	a.Env().Send(b.Addr(), []byte("stale")) // arrives at t=40ms
	n.RunFor(5 * time.Millisecond)
	b.Crash()
	rb2 := &recorder{}
	b.Restart(rb2) // instant reboot, well before the packet lands
	n.RunUntilIdle()
	if len(rb.got)+len(rb2.got) != 0 {
		t.Fatalf("pre-crash packet crossed the reboot: old=%d new=%d", len(rb.got), len(rb2.got))
	}
}

func TestCrashSuppressesDeadTimersAndSends(t *testing.T) {
	n, s1, _ := twoSiteNet(t)
	h := &timerHandler{delay: 50 * time.Millisecond}
	node := s1.NewHost("n", h)
	n.Start()
	env := node.Env() // capture the live env before the crash
	n.RunFor(10 * time.Millisecond)
	node.Crash()
	n.RunUntilIdle()
	if h.fired != 0 {
		t.Fatalf("dead incarnation's timer fired %d times", h.fired)
	}
	// Sends and joins from the dead env must be inert no-ops.
	if err := env.Send(node.Addr(), []byte("ghost")); err != nil {
		t.Fatalf("dead send errored: %v", err)
	}
	if err := env.Join(wire.GroupID(1)); err != nil {
		t.Fatalf("dead join errored: %v", err)
	}
	if n.Members(wire.GroupID(1)) != 0 {
		t.Fatal("dead env joined a group")
	}

	h2 := &timerHandler{delay: 20 * time.Millisecond}
	node.Restart(h2)
	n.RunUntilIdle()
	if h2.fired != 1 {
		t.Fatalf("restarted incarnation's timer fired %d times, want 1", h2.fired)
	}
	if h.fired != 0 {
		t.Fatal("old incarnation's timer fired after restart")
	}
}

func TestCrashForgetsGroupMemberships(t *testing.T) {
	const g = wire.GroupID(4)
	n, s1, s2 := twoSiteNet(t)
	src := s1.NewHost("src", &recorder{})
	r := &recorder{join: []wire.GroupID{g}}
	m := s2.NewHost("m", r)
	n.Start()
	if n.Members(g) != 1 {
		t.Fatalf("Members = %d, want 1", n.Members(g))
	}
	m.Crash()
	if n.Members(g) != 0 {
		t.Fatalf("Members = %d after crash, want 0", n.Members(g))
	}
	src.Env().Multicast(g, transport.TTLGlobal, []byte("lost"))
	n.RunUntilIdle()

	// A rebooted process must re-join to hear the group again.
	r2 := &recorder{join: []wire.GroupID{g}}
	m.Restart(r2)
	src.Env().Multicast(g, transport.TTLGlobal, []byte("heard"))
	n.RunUntilIdle()
	if len(r.got) != 0 {
		t.Fatalf("dead incarnation got %+v", r.got)
	}
	if len(r2.got) != 1 || r2.got[0].data != "heard" {
		t.Fatalf("rebooted member got %+v, want exactly \"heard\"", r2.got)
	}
}

func TestRestartOfLiveNodePanics(t *testing.T) {
	n, s1, _ := twoSiteNet(t)
	node := s1.NewHost("n", &recorder{})
	n.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("Restart of a live node did not panic")
		}
	}()
	node.Restart(&recorder{})
}

func TestDuplicateModelDeliversTwice(t *testing.T) {
	n, s1, s2 := twoSiteNet(t)
	a := s1.NewHost("a", &recorder{})
	rb := &recorder{}
	b := s2.NewHost("b", rb)
	s2.TailDown().SetLoss(Duplicate{P: 1, Lag: 3 * time.Millisecond})
	n.Start()
	a.Env().Send(b.Addr(), []byte("x"))
	n.RunUntilIdle()
	if len(rb.got) != 2 {
		t.Fatalf("received %d copies, want 2", len(rb.got))
	}
	if gap := rb.got[1].at.Sub(rb.got[0].at); gap != 3*time.Millisecond {
		t.Fatalf("copies %v apart, want 3ms", gap)
	}
	c := s2.TailDown().Counters()
	if c.Dups != 1 || c.Packets != 2 {
		t.Fatalf("counters = %+v, want 1 dup of 2 traversals", c)
	}
}

func TestDuplicateModelOnMulticast(t *testing.T) {
	const g = wire.GroupID(6)
	n, s1, s2 := twoSiteNet(t)
	src := s1.NewHost("src", &recorder{})
	r := &recorder{join: []wire.GroupID{g}}
	s2.NewHost("m", r)
	s2.TailDown().SetLoss(Duplicate{P: 1, Lag: time.Millisecond})
	n.Start()
	src.Env().Multicast(g, transport.TTLGlobal, []byte("x"))
	n.RunUntilIdle()
	if len(r.got) != 2 {
		t.Fatalf("member received %d copies, want 2", len(r.got))
	}
}

func TestReorderModelInvertsArrivals(t *testing.T) {
	n, s1, s2 := twoSiteNet(t)
	a := s1.NewHost("a", &recorder{})
	rb := &recorder{}
	b := s2.NewHost("b", rb)
	base := 40 * time.Millisecond
	maxExtra := 20 * time.Millisecond
	s2.TailDown().SetLoss(Reorder{P: 0.5, MaxDelay: maxExtra})
	n.Start()
	const total = 200
	sentAt := make(map[string]time.Time, total)
	for i := 0; i < total; i++ {
		data := fmt.Sprintf("p%03d", i)
		sentAt[data] = n.Clock().Now()
		a.Env().Send(b.Addr(), []byte(data))
		n.RunFor(time.Millisecond)
	}
	n.RunUntilIdle()
	if len(rb.got) != total {
		t.Fatalf("received %d, want %d (Reorder must never drop)", len(rb.got), total)
	}
	inversions := 0
	for i := 1; i < len(rb.got); i++ {
		if rb.got[i].data < rb.got[i-1].data {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatal("no arrival inversions with P=0.5 over 200 packets spaced 1ms")
	}
	for _, rec := range rb.got {
		d := rec.at.Sub(sentAt[rec.data])
		if d < base || d > base+maxExtra {
			t.Fatalf("latency %v outside [%v, %v]", d, base, base+maxExtra)
		}
	}
}

func TestComposeCombinesModels(t *testing.T) {
	n, s1, s2 := twoSiteNet(t)
	a := s1.NewHost("a", &recorder{})
	rb := &recorder{}
	b := s2.NewHost("b", rb)
	s2.TailDown().SetLoss(Compose(
		Bernoulli{P: 0.3},
		Reorder{P: 0.5, MaxDelay: 10 * time.Millisecond},
		Duplicate{P: 0.2, Lag: time.Millisecond},
		nil, // nils are skipped
	))
	n.Start()
	const total = 1000
	for i := 0; i < total; i++ {
		a.Env().Send(b.Addr(), []byte("x"))
		n.RunFor(time.Millisecond)
	}
	n.RunUntilIdle()
	c := s2.TailDown().Counters()
	if c.Drops == 0 {
		t.Fatal("composed chain never dropped")
	}
	if c.Dups == 0 {
		t.Fatal("composed chain never duplicated")
	}
	// Survivors ± duplicates must reconcile exactly with deliveries.
	want := total - int(c.Drops) + int(c.Dups)
	if len(rb.got) != want {
		t.Fatalf("received %d, want %d (= %d sent - %d drops + %d dups)",
			len(rb.got), want, total, c.Drops, c.Dups)
	}
}

// TestChaosModelsDeterministic: the new models draw from the network rng in
// a fixed order, so identical seeds must reproduce identical traces even
// with drops, duplicates, reordering and a mid-run crash/restart.
func TestChaosModelsDeterministic(t *testing.T) {
	run := func(seed int64) []string {
		const g = wire.GroupID(2)
		n := New(seed)
		s1 := n.NewSite(SiteParams{Name: "s1"})
		s2 := n.NewSite(SiteParams{Name: "s2"})
		src := s1.NewHost("src", &recorder{})
		r1 := &recorder{join: []wire.GroupID{g}}
		r2 := &recorder{join: []wire.GroupID{g}}
		s1.NewHost("r1", r1)
		m2 := s2.NewHost("r2", r2)
		s2.TailDown().SetLoss(Compose(
			Bernoulli{P: 0.2},
			Reorder{P: 0.3, MaxDelay: 5 * time.Millisecond},
			Duplicate{P: 0.1, Lag: time.Millisecond},
		))
		n.Start()
		var r2b *recorder
		for i := 0; i < 100; i++ {
			if i == 40 {
				m2.Crash()
			}
			if i == 60 {
				r2b = &recorder{join: []wire.GroupID{g}}
				m2.Restart(r2b)
			}
			src.Env().Multicast(g, transport.TTLGlobal, []byte{byte(i)})
			n.RunFor(2 * time.Millisecond)
		}
		n.RunUntilIdle()
		var trace []string
		for i, r := range []*recorder{r1, r2, r2b} {
			for _, rec := range r.got {
				trace = append(trace, fmt.Sprintf("%d:%x@%d", i, rec.data, rec.at.UnixNano()))
			}
		}
		return trace
	}
	a, b := run(17), run(17)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %s vs %s", i, a[i], b[i])
		}
	}
}
