package netsim

import (
	"math/rand"
	"time"
)

// LossModel decides, per packet traversal of one link, whether the packet
// is dropped. Implementations may keep state (burst models); they are
// invoked from the single-threaded simulator loop, so no locking is needed.
type LossModel interface {
	Drop(now time.Time, rng *rand.Rand) bool
}

// PacketAwareLoss is an optional extension: models that need to inspect
// the datagram (e.g. to target only data packets) implement it and the
// link uses DropPacket instead of Drop. The buffer must not be retained or
// modified.
type PacketAwareLoss interface {
	LossModel
	DropPacket(now time.Time, rng *rand.Rand, data []byte) bool
}

// LossNone never drops.
type LossNone struct{}

// Drop implements LossModel.
func (LossNone) Drop(time.Time, *rand.Rand) bool { return false }

// Bernoulli drops each packet independently with probability P.
type Bernoulli struct{ P float64 }

// Drop implements LossModel.
func (b Bernoulli) Drop(_ time.Time, rng *rand.Rand) bool {
	return rng.Float64() < b.P
}

// GilbertElliott is a two-state burst loss model. In the Good state packets
// drop with probability LossGood; in the Bad state with LossBad. After each
// packet, the state flips Good→Bad with probability PGoodToBad and Bad→Good
// with probability PBadToGood. It produces the bursty, correlated loss
// typical of a congested tail circuit.
type GilbertElliott struct {
	PGoodToBad float64
	PBadToGood float64
	LossGood   float64
	LossBad    float64

	bad bool
}

// Drop implements LossModel.
func (g *GilbertElliott) Drop(_ time.Time, rng *rand.Rand) bool {
	var p float64
	if g.bad {
		p = g.LossBad
	} else {
		p = g.LossGood
	}
	drop := rng.Float64() < p
	if g.bad {
		if rng.Float64() < g.PBadToGood {
			g.bad = false
		}
	} else {
		if rng.Float64() < g.PGoodToBad {
			g.bad = true
		}
	}
	return drop
}

// Window is a half-open time interval [Start, End).
type Window struct {
	Start, End time.Time
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t time.Time) bool {
	return !t.Before(w.Start) && t.Before(w.End)
}

// Outages drops every packet whose traversal begins inside one of the
// configured windows — the paper's "burst model of congestion" (§2.1.1)
// where a host receives nothing for t_burst.
type Outages struct {
	Windows []Window
}

// Drop implements LossModel.
func (o *Outages) Drop(now time.Time, _ *rand.Rand) bool {
	for _, w := range o.Windows {
		if w.Contains(now) {
			return true
		}
	}
	return false
}

// Gate is a manually switched loss model: while Down, everything drops.
// Experiments flip it from scheduled callbacks.
type Gate struct{ Down bool }

// Drop implements LossModel.
func (g *Gate) Drop(time.Time, *rand.Rand) bool { return g.Down }

// FirstN drops the first N packets that traverse the link, then passes
// everything. Useful for deterministic single-loss tests.
type FirstN struct {
	N    int
	seen int
}

// Drop implements LossModel.
func (f *FirstN) Drop(time.Time, *rand.Rand) bool {
	if f.seen < f.N {
		f.seen++
		return true
	}
	return false
}

// DropSeqs drops exactly the packets whose 1-based traversal index over the
// link is listed. It gives tests full control of which packet is lost.
type DropSeqs struct {
	Indices map[int]bool
	count   int
}

// Drop implements LossModel.
func (d *DropSeqs) Drop(time.Time, *rand.Rand) bool {
	d.count++
	return d.Indices[d.count]
}

// ReorderingModel is an optional LossModel extension: surviving packets may
// be held back by an extra delay, letting later packets overtake them. The
// link adds ExtraDelay's result to the packet's arrival time.
type ReorderingModel interface {
	LossModel
	ExtraDelay(now time.Time, rng *rand.Rand) time.Duration
}

// DuplicatingModel is an optional LossModel extension: surviving packets may
// be delivered twice. When Duplicate reports true, the link schedules a
// second copy lagging the original by the returned duration.
type DuplicatingModel interface {
	LossModel
	Duplicate(now time.Time, rng *rand.Rand) (lag time.Duration, dup bool)
}

// Reorder never drops; with probability P it delays a packet by an extra
// uniform amount in (0, MaxDelay], so packets sent close together can arrive
// out of order. Compose it with a drop model for lossy-and-reordering links.
type Reorder struct {
	P        float64
	MaxDelay time.Duration
}

// Drop implements LossModel (never drops).
func (Reorder) Drop(time.Time, *rand.Rand) bool { return false }

// ExtraDelay implements ReorderingModel.
func (r Reorder) ExtraDelay(_ time.Time, rng *rand.Rand) time.Duration {
	if r.MaxDelay <= 0 || rng.Float64() >= r.P {
		return 0
	}
	return time.Duration(rng.Int63n(int64(r.MaxDelay))) + 1
}

// Duplicate never drops; with probability P it delivers a second copy of the
// packet, Lag after the original (0 means back-to-back). Receiver-side
// dedup is the protocol's job, not the network's.
type Duplicate struct {
	P   float64
	Lag time.Duration
}

// Drop implements LossModel (never drops).
func (Duplicate) Drop(time.Time, *rand.Rand) bool { return false }

// Duplicate implements DuplicatingModel.
func (d Duplicate) Duplicate(_ time.Time, rng *rand.Rand) (time.Duration, bool) {
	if rng.Float64() >= d.P {
		return 0, false
	}
	return d.Lag, true
}

// Chain composes several loss models on one link: a packet drops if any
// member drops it, reorder delays add, and the first member that duplicates
// wins. Every member is consulted on every packet (even after an earlier
// member already dropped it) so each model's rng/state stream advances
// identically whatever the others decide — a prerequisite for reproducible
// fault schedules.
type Chain struct{ Models []LossModel }

// Compose builds a Chain; nil members are skipped.
func Compose(models ...LossModel) *Chain {
	c := &Chain{}
	for _, m := range models {
		if m != nil {
			c.Models = append(c.Models, m)
		}
	}
	return c
}

// Drop implements LossModel.
func (c *Chain) Drop(now time.Time, rng *rand.Rand) bool {
	drop := false
	for _, m := range c.Models {
		if m.Drop(now, rng) {
			drop = true
		}
	}
	return drop
}

// DropPacket implements PacketAwareLoss, routing to members' DropPacket
// where available.
func (c *Chain) DropPacket(now time.Time, rng *rand.Rand, data []byte) bool {
	drop := false
	for _, m := range c.Models {
		var d bool
		if pa, ok := m.(PacketAwareLoss); ok {
			d = pa.DropPacket(now, rng, data)
		} else {
			d = m.Drop(now, rng)
		}
		if d {
			drop = true
		}
	}
	return drop
}

// ExtraDelay implements ReorderingModel, summing members' extra delays.
func (c *Chain) ExtraDelay(now time.Time, rng *rand.Rand) time.Duration {
	var total time.Duration
	for _, m := range c.Models {
		if rm, ok := m.(ReorderingModel); ok {
			total += rm.ExtraDelay(now, rng)
		}
	}
	return total
}

// Duplicate implements DuplicatingModel; the first member that duplicates
// wins (later members are still consulted to keep their rng draws aligned).
func (c *Chain) Duplicate(now time.Time, rng *rand.Rand) (time.Duration, bool) {
	var lag time.Duration
	dup := false
	for _, m := range c.Models {
		if dm, ok := m.(DuplicatingModel); ok {
			if l, d := dm.Duplicate(now, rng); d && !dup {
				lag, dup = l, true
			}
		}
	}
	return lag, dup
}

// DropMatching drops, among packets satisfying Match, exactly those whose
// 1-based match index is listed in Indices. Packets that do not match are
// never dropped. It implements PacketAwareLoss; used to lose "the 3rd data
// packet" while heartbeats and repairs flow freely.
type DropMatching struct {
	Match   func(data []byte) bool
	Indices map[int]bool
	count   int
}

// Drop implements LossModel (no packet available: never drops).
func (d *DropMatching) Drop(time.Time, *rand.Rand) bool { return false }

// DropPacket implements PacketAwareLoss.
func (d *DropMatching) DropPacket(_ time.Time, _ *rand.Rand, data []byte) bool {
	if d.Match == nil || !d.Match(data) {
		return false
	}
	d.count++
	return d.Indices[d.count]
}
