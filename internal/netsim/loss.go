package netsim

import (
	"math/rand"
	"time"
)

// LossModel decides, per packet traversal of one link, whether the packet
// is dropped. Implementations may keep state (burst models); they are
// invoked from the single-threaded simulator loop, so no locking is needed.
type LossModel interface {
	Drop(now time.Time, rng *rand.Rand) bool
}

// PacketAwareLoss is an optional extension: models that need to inspect
// the datagram (e.g. to target only data packets) implement it and the
// link uses DropPacket instead of Drop. The buffer must not be retained or
// modified.
type PacketAwareLoss interface {
	LossModel
	DropPacket(now time.Time, rng *rand.Rand, data []byte) bool
}

// LossNone never drops.
type LossNone struct{}

// Drop implements LossModel.
func (LossNone) Drop(time.Time, *rand.Rand) bool { return false }

// Bernoulli drops each packet independently with probability P.
type Bernoulli struct{ P float64 }

// Drop implements LossModel.
func (b Bernoulli) Drop(_ time.Time, rng *rand.Rand) bool {
	return rng.Float64() < b.P
}

// GilbertElliott is a two-state burst loss model. In the Good state packets
// drop with probability LossGood; in the Bad state with LossBad. After each
// packet, the state flips Good→Bad with probability PGoodToBad and Bad→Good
// with probability PBadToGood. It produces the bursty, correlated loss
// typical of a congested tail circuit.
type GilbertElliott struct {
	PGoodToBad float64
	PBadToGood float64
	LossGood   float64
	LossBad    float64

	bad bool
}

// Drop implements LossModel.
func (g *GilbertElliott) Drop(_ time.Time, rng *rand.Rand) bool {
	var p float64
	if g.bad {
		p = g.LossBad
	} else {
		p = g.LossGood
	}
	drop := rng.Float64() < p
	if g.bad {
		if rng.Float64() < g.PBadToGood {
			g.bad = false
		}
	} else {
		if rng.Float64() < g.PGoodToBad {
			g.bad = true
		}
	}
	return drop
}

// Window is a half-open time interval [Start, End).
type Window struct {
	Start, End time.Time
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t time.Time) bool {
	return !t.Before(w.Start) && t.Before(w.End)
}

// Outages drops every packet whose traversal begins inside one of the
// configured windows — the paper's "burst model of congestion" (§2.1.1)
// where a host receives nothing for t_burst.
type Outages struct {
	Windows []Window
}

// Drop implements LossModel.
func (o *Outages) Drop(now time.Time, _ *rand.Rand) bool {
	for _, w := range o.Windows {
		if w.Contains(now) {
			return true
		}
	}
	return false
}

// Gate is a manually switched loss model: while Down, everything drops.
// Experiments flip it from scheduled callbacks.
type Gate struct{ Down bool }

// Drop implements LossModel.
func (g *Gate) Drop(time.Time, *rand.Rand) bool { return g.Down }

// FirstN drops the first N packets that traverse the link, then passes
// everything. Useful for deterministic single-loss tests.
type FirstN struct {
	N    int
	seen int
}

// Drop implements LossModel.
func (f *FirstN) Drop(time.Time, *rand.Rand) bool {
	if f.seen < f.N {
		f.seen++
		return true
	}
	return false
}

// DropSeqs drops exactly the packets whose 1-based traversal index over the
// link is listed. It gives tests full control of which packet is lost.
type DropSeqs struct {
	Indices map[int]bool
	count   int
}

// Drop implements LossModel.
func (d *DropSeqs) Drop(time.Time, *rand.Rand) bool {
	d.count++
	return d.Indices[d.count]
}

// DropMatching drops, among packets satisfying Match, exactly those whose
// 1-based match index is listed in Indices. Packets that do not match are
// never dropped. It implements PacketAwareLoss; used to lose "the 3rd data
// packet" while heartbeats and repairs flow freely.
type DropMatching struct {
	Match   func(data []byte) bool
	Indices map[int]bool
	count   int
}

// Drop implements LossModel (no packet available: never drops).
func (d *DropMatching) Drop(time.Time, *rand.Rand) bool { return false }

// DropPacket implements PacketAwareLoss.
func (d *DropMatching) DropPacket(_ time.Time, _ *rand.Rand, data []byte) bool {
	if d.Match == nil || !d.Match(data) {
		return false
	}
	d.count++
	return d.Indices[d.count]
}
