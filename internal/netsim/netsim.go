// Package netsim is a deterministic discrete-event network simulator for
// LBRM experiments. It models the paper's WAN topology (Figure 1): hosts on
// site LANs, sites joined to a backbone through tail circuits, and optional
// intermediate router tiers. Links have propagation delay, an optional
// serialization rate, a loss model, and a TTL threshold for multicast
// scoping.
//
// Two properties the paper's claims rest on are modeled explicitly:
//
//   - Correlated loss: a multicast packet's drop decision is made once per
//     link, so a congested tail circuit loses a packet for every receiver
//     at that site at once (prerequisite for the NACK-implosion analysis,
//     §2.2.2).
//   - TTL scoping: a link is crossed only by packets whose TTL meets the
//     link's threshold, so a secondary logger can re-multicast a repair
//     that stays within its site (§2.2.1).
//
// The simulator computes a packet's full path (including future queueing)
// at send time; under serialization-rate contention this is a cut-through
// approximation that can slightly reorder heavily queued packets, which is
// irrelevant at LBRM's packet rates.
package netsim

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"lbrm/internal/transport"
	"lbrm/internal/vtime"
	"lbrm/internal/wire"
)

// NodeID identifies a host in the simulated network.
type NodeID int

// Addr is the simulator's transport address.
type Addr struct{ ID NodeID }

// Network implements transport.Addr.
func (Addr) Network() string { return "sim" }

// String implements transport.Addr; ParseAddr inverts it.
func (a Addr) String() string { return "sim:" + strconv.Itoa(int(a.ID)) }

// ParseAddr parses a string produced by Addr.String.
func ParseAddr(s string) (Addr, error) {
	rest, ok := strings.CutPrefix(s, "sim:")
	if !ok {
		return Addr{}, fmt.Errorf("netsim: address %q lacks sim: prefix", s)
	}
	id, err := strconv.Atoi(rest)
	if err != nil {
		return Addr{}, fmt.Errorf("netsim: bad address %q: %v", s, err)
	}
	return Addr{ID: NodeID(id)}, nil
}

// LinkConfig describes one direction of a link.
type LinkConfig struct {
	// Name labels the link in taps and counters (e.g. "site3/tail-down").
	Name string
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// Jitter adds a uniformly random extra delay in [0, Jitter) per
	// packet, modelling queueing variation along the path.
	Jitter time.Duration
	// Rate is the serialization rate in bits per second; 0 means infinite.
	Rate int64
	// Loss decides drops; nil means no loss.
	Loss LossModel
	// TTLRequired is the minimum multicast TTL needed to cross this link.
	// Zero means any TTL ≥ 0 crosses. Unicast ignores it.
	TTLRequired int
}

// LinkCounters accumulates per-link traffic statistics.
type LinkCounters struct {
	Packets uint64 // traversals attempted
	Bytes   uint64 // bytes of packets that crossed (not dropped)
	Drops   uint64
}

// Link is one direction of a point-to-point link.
type Link struct {
	cfg      LinkConfig
	nextFree time.Time
	counters LinkCounters
}

// Name returns the link's label.
func (l *Link) Name() string { return l.cfg.Name }

// Counters returns a snapshot of the link's counters.
func (l *Link) Counters() LinkCounters { return l.counters }

// ResetCounters zeroes the link's counters.
func (l *Link) ResetCounters() { l.counters = LinkCounters{} }

// SetLoss replaces the link's loss model (nil disables loss).
func (l *Link) SetLoss(m LossModel) { l.cfg.Loss = m }

// SetJitter replaces the link's per-packet random delay bound.
func (l *Link) SetJitter(d time.Duration) { l.cfg.Jitter = d }

// Delay returns the link's propagation delay.
func (l *Link) Delay() time.Duration { return l.cfg.Delay }

// traverse simulates one packet crossing the link starting at t. It
// returns the arrival time at the far end and whether the packet survived.
func (l *Link) traverse(n *Network, t time.Time, data []byte, from, to NodeID, mcast bool) (time.Time, bool) {
	size := len(data)
	l.counters.Packets++
	dropped := false
	if l.cfg.Loss != nil {
		if pa, ok := l.cfg.Loss.(PacketAwareLoss); ok {
			dropped = pa.DropPacket(t, n.rng, data)
		} else {
			dropped = l.cfg.Loss.Drop(t, n.rng)
		}
		if dropped {
			l.counters.Drops++
		}
	}
	if n.tap != nil {
		n.tap(TapEvent{Link: l, Time: t, Size: size, Data: data,
			From: from, To: to, Dropped: dropped, Multicast: mcast})
	}
	if dropped {
		return t, false
	}
	l.counters.Bytes += uint64(size)
	start := t
	if l.cfg.Rate > 0 {
		if l.nextFree.After(start) {
			start = l.nextFree
		}
		tx := time.Duration(float64(size*8) / float64(l.cfg.Rate) * float64(time.Second))
		l.nextFree = start.Add(tx)
		start = l.nextFree
	}
	arrival := start.Add(l.cfg.Delay)
	if l.cfg.Jitter > 0 {
		arrival = arrival.Add(time.Duration(n.rng.Int63n(int64(l.cfg.Jitter))))
	}
	return arrival, true
}

// TapEvent describes one packet traversal of one link, surfaced to the
// network tap for traffic accounting in experiments.
type TapEvent struct {
	Link *Link
	Time time.Time
	Size int
	// Data is the raw datagram (not a copy: taps must not retain it).
	Data []byte
	// From is the sending node; To the unicast destination (-1 for
	// multicast, where the destination is the group).
	From, To  NodeID
	Dropped   bool
	Multicast bool
}

// TapFunc observes link traversals.
type TapFunc func(TapEvent)

// Router is an interior node of the topology tree.
type Router struct {
	net      *Network
	name     string
	parent   *Router
	up, down *Link // to/from parent; nil on the root
	children []*Router
	leaves   []*Node
}

// Name returns the router's label.
func (r *Router) Name() string { return r.name }

// UpLink returns the link from this router toward its parent (nil on root).
func (r *Router) UpLink() *Link { return r.up }

// DownLink returns the link from the parent toward this router (nil on root).
func (r *Router) DownLink() *Link { return r.down }

// Node is a simulated host running one transport.Handler.
type Node struct {
	net      *Network
	id       NodeID
	name     string
	parent   *Router
	up, down *Link
	handler  transport.Handler
	env      *simEnv
	received uint64
}

// ID returns the node's identifier.
func (n *Node) ID() NodeID { return n.id }

// Addr returns the node's transport address.
func (n *Node) Addr() Addr { return Addr{ID: n.id} }

// Name returns the node's label.
func (n *Node) Name() string { return n.name }

// UpLink returns the node's host→LAN link.
func (n *Node) UpLink() *Link { return n.up }

// DownLink returns the node's LAN→host link.
func (n *Node) DownLink() *Link { return n.down }

// Received returns the number of datagrams delivered to the handler.
func (n *Node) Received() uint64 { return n.received }

// Env returns the node's environment (available after Network.Start).
func (n *Node) Env() transport.Env { return n.env }

// SetHandler attaches a handler to a node created without one (useful when
// handler construction needs other nodes' addresses first). If the network
// has already started, the handler starts immediately.
func (n *Node) SetHandler(h transport.Handler) {
	n.handler = h
	if n.net.started && h != nil {
		h.Start(n.env)
	}
}

// Network is the simulated internetwork plus its virtual clock.
type Network struct {
	clk     *vtime.Sim
	rng     *rand.Rand
	seed    int64
	root    *Router
	nodes   []*Node
	routers []*Router
	groups  map[wire.GroupID]map[*Node]bool
	tap     TapFunc
	started bool
}

// New creates a network with a root (backbone) router and a virtual clock
// starting at a fixed epoch. The seed makes every run reproducible.
func New(seed int64) *Network {
	n := &Network{
		clk:    vtime.NewSim(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)),
		rng:    rand.New(rand.NewSource(seed)),
		seed:   seed,
		groups: make(map[wire.GroupID]map[*Node]bool),
	}
	n.root = &Router{net: n, name: "core"}
	n.routers = append(n.routers, n.root)
	return n
}

// Clock returns the network's virtual clock.
func (n *Network) Clock() *vtime.Sim { return n.clk }

// Root returns the backbone router.
func (n *Network) Root() *Router { return n.root }

// SetTap installs fn as the link-traversal observer (nil uninstalls).
func (n *Network) SetTap(fn TapFunc) { n.tap = fn }

// Nodes returns all nodes in creation order.
func (n *Network) Nodes() []*Node { return n.nodes }

// NewRouter attaches a router under parent with the given uplink/downlink
// configurations.
func (n *Network) NewRouter(parent *Router, name string, up, down LinkConfig) *Router {
	if parent == nil {
		parent = n.root
	}
	if up.Name == "" {
		up.Name = name + "/up"
	}
	if down.Name == "" {
		down.Name = name + "/down"
	}
	r := &Router{
		net:    n,
		name:   name,
		parent: parent,
		up:     &Link{cfg: up},
		down:   &Link{cfg: down},
	}
	parent.children = append(parent.children, r)
	n.routers = append(n.routers, r)
	return r
}

// NewNode attaches a host under router r with the given host-link
// configurations, running handler h. The handler's Start runs when
// Network.Start is called (or immediately if the network already started).
func (n *Network) NewNode(r *Router, name string, up, down LinkConfig, h transport.Handler) *Node {
	if r == nil {
		r = n.root
	}
	if up.Name == "" {
		up.Name = name + "/up"
	}
	if down.Name == "" {
		down.Name = name + "/down"
	}
	node := &Node{
		net:     n,
		id:      NodeID(len(n.nodes)),
		name:    name,
		parent:  r,
		up:      &Link{cfg: up},
		down:    &Link{cfg: down},
		handler: h,
	}
	node.env = &simEnv{node: node, rng: rand.New(rand.NewSource(n.seed ^ (0x9E3779B9 * int64(node.id+1))))}
	r.leaves = append(r.leaves, node)
	n.nodes = append(n.nodes, node)
	if n.started && h != nil {
		h.Start(node.env)
	}
	return node
}

// Start calls Start on every node's handler in creation order.
func (n *Network) Start() {
	if n.started {
		return
	}
	n.started = true
	for _, node := range n.nodes {
		if node.handler != nil {
			node.handler.Start(node.env)
		}
	}
}

// RunFor advances virtual time by d, delivering everything due.
func (n *Network) RunFor(d time.Duration) { n.clk.RunFor(d) }

// RunUntilIdle fires all pending events.
func (n *Network) RunUntilIdle() { n.clk.Run() }

// node returns the node with the given id, or nil.
func (n *Network) node(id NodeID) *Node {
	if int(id) < 0 || int(id) >= len(n.nodes) {
		return nil
	}
	return n.nodes[id]
}

// join subscribes node to group g.
func (n *Network) join(g wire.GroupID, node *Node) {
	m := n.groups[g]
	if m == nil {
		m = make(map[*Node]bool)
		n.groups[g] = m
	}
	m[node] = true
}

// leave unsubscribes node from group g.
func (n *Network) leave(g wire.GroupID, node *Node) {
	if m := n.groups[g]; m != nil {
		delete(m, node)
	}
}

// Members returns how many nodes are subscribed to g.
func (n *Network) Members(g wire.GroupID) int { return len(n.groups[g]) }

// unicast routes a datagram from src to dst along the tree path.
func (n *Network) unicast(src *Node, dst NodeID, data []byte) error {
	target := n.node(dst)
	if target == nil {
		return fmt.Errorf("netsim: unicast to unknown node %d", dst)
	}
	buf := append([]byte(nil), data...)
	now := n.clk.Now()
	if target == src {
		n.deliver(target, src.id, buf, 0)
		return nil
	}
	t := now
	ok := true
	for _, l := range n.path(src, target) {
		t, ok = l.traverse(n, t, buf, src.id, dst, false)
		if !ok {
			return nil // lost in transit; sender cannot tell
		}
	}
	n.deliver(target, src.id, buf, t.Sub(now))
	return nil
}

// path returns the ordered links from src to dst (both nodes, distinct).
func (n *Network) path(src, dst *Node) []*Link {
	links := []*Link{src.up}
	// Climb from both sides to find the lowest common ancestor.
	depth := func(r *Router) int {
		d := 0
		for ; r != nil; r = r.parent {
			d++
		}
		return d
	}
	a, b := src.parent, dst.parent
	var downs []*Link
	da, db := depth(a), depth(b)
	for da > db {
		links = append(links, a.up)
		a = a.parent
		da--
	}
	for db > da {
		downs = append(downs, b.down)
		b = b.parent
		db--
	}
	for a != b {
		links = append(links, a.up)
		downs = append(downs, b.down)
		a, b = a.parent, b.parent
	}
	for i := len(downs) - 1; i >= 0; i-- {
		links = append(links, downs[i])
	}
	return append(links, dst.down)
}

// PathDelay returns the sum of propagation delays from a to b (ignoring
// loss and queueing); useful for computing expected RTTs in tests.
func (n *Network) PathDelay(a, b NodeID) time.Duration {
	na, nb := n.node(a), n.node(b)
	if na == nil || nb == nil || na == nb {
		return 0
	}
	var d time.Duration
	for _, l := range n.path(na, nb) {
		d += l.cfg.Delay
	}
	return d
}

// multicast floods a datagram to all members of g (except the sender)
// respecting TTL thresholds, making one loss decision per link. The
// distribution tree is pruned to subtrees that actually contain members
// (as IGMP/multicast routing would): a site with no subscribers never
// sees the packet on its tail circuit.
func (n *Network) multicast(src *Node, g wire.GroupID, ttl int, data []byte) error {
	members := n.groups[g]
	if len(members) == 0 {
		return nil
	}
	buf := append([]byte(nil), data...)
	now := n.clk.Now()
	if ttl < src.up.cfg.TTLRequired {
		return nil
	}
	t, ok := src.up.traverse(n, now, buf, src.id, -1, true)
	if !ok {
		return nil
	}
	n.flood(src.parent, src, nil, false, t, ttl, members, n.memberRouters(members), src.id, buf, now)
	return nil
}

// memberRouters returns the set of routers lying on a path between some
// group member and the root — the multicast distribution tree.
func (n *Network) memberRouters(members map[*Node]bool) map[*Router]bool {
	tree := make(map[*Router]bool)
	for node := range members {
		for r := node.parent; r != nil && !tree[r]; r = r.parent {
			tree[r] = true
		}
	}
	return tree
}

// flood recursively distributes a multicast packet through the router tree.
// exclNode/exclChild identify where the packet came from; fromParent
// prevents sending it back up; tree prunes member-less subtrees.
func (n *Network) flood(r *Router, exclNode *Node, exclChild *Router, fromParent bool,
	t time.Time, ttl int, members map[*Node]bool, tree map[*Router]bool,
	from NodeID, buf []byte, sent time.Time) {

	for _, leaf := range r.leaves {
		if leaf == exclNode || !members[leaf] {
			continue
		}
		if ttl < leaf.down.cfg.TTLRequired {
			continue
		}
		if t2, ok := leaf.down.traverse(n, t, buf, from, -1, true); ok {
			n.deliver(leaf, from, buf, t2.Sub(sent))
		}
	}
	for _, c := range r.children {
		if c == exclChild || !tree[c] {
			continue
		}
		if ttl < c.down.cfg.TTLRequired {
			continue
		}
		if t2, ok := c.down.traverse(n, t, buf, from, -1, true); ok {
			n.flood(c, nil, nil, true, t2, ttl, members, tree, from, buf, sent)
		}
	}
	if !fromParent && r.parent != nil {
		if ttl >= r.up.cfg.TTLRequired {
			if t2, ok := r.up.traverse(n, t, buf, from, -1, true); ok {
				n.flood(r.parent, nil, r, false, t2, ttl, members, tree, from, buf, sent)
			}
		}
	}
}

// deliver schedules handler.Recv on target after delay.
func (n *Network) deliver(target *Node, from NodeID, buf []byte, delay time.Duration) {
	n.clk.AfterFunc(delay, func() {
		target.received++
		if target.handler != nil {
			target.handler.Recv(Addr{ID: from}, buf)
		}
	})
}

// simEnv implements transport.Env for one node.
type simEnv struct {
	node *Node
	rng  *rand.Rand
}

func (e *simEnv) Now() time.Time { return e.node.net.clk.Now() }

func (e *simEnv) AfterFunc(d time.Duration, fn func()) vtime.Timer {
	return e.node.net.clk.AfterFunc(d, fn)
}

func (e *simEnv) Send(to transport.Addr, data []byte) error {
	a, ok := to.(Addr)
	if !ok {
		return fmt.Errorf("netsim: foreign address %v (%s)", to, to.Network())
	}
	return e.node.net.unicast(e.node, a.ID, data)
}

func (e *simEnv) Multicast(g wire.GroupID, ttl int, data []byte) error {
	return e.node.net.multicast(e.node, g, ttl, data)
}

func (e *simEnv) Join(g wire.GroupID) error {
	e.node.net.join(g, e.node)
	return nil
}

func (e *simEnv) Leave(g wire.GroupID) error {
	e.node.net.leave(g, e.node)
	return nil
}

func (e *simEnv) LocalAddr() transport.Addr { return e.node.Addr() }

func (e *simEnv) ParseAddr(s string) (transport.Addr, error) { return ParseAddr(s) }

func (e *simEnv) Rand() *rand.Rand { return e.rng }
