package netsim

import (
	"strings"

	"lbrm/internal/pcapio"
	"lbrm/internal/wire"
)

// PcapTap returns a tap that writes every surviving traversal of links
// whose name contains match (all links when match is empty) to pw, as
// synthesized IPv4/UDP frames. Pick a single wire to tap (e.g.
// "source-site/tail-up") to avoid recording one packet once per hop, the
// same discipline as placing a physical tap. Write errors are passed to
// onErr (may be nil) and the tap keeps going.
//
// Address synthesis: node N → 10.77.N/16 style host addresses, multicast
// destinations → 239.77.0.<group>. Port 7000 on both ends.
func PcapTap(pw *pcapio.Writer, match string, onErr func(error)) TapFunc {
	return func(ev TapEvent) {
		if ev.Dropped {
			return
		}
		if match != "" && !strings.Contains(ev.Link.Name(), match) {
			return
		}
		src := nodeIP(ev.From)
		var dst [4]byte
		if ev.To >= 0 {
			dst = nodeIP(ev.To)
		} else {
			// Multicast: name the group from the LBRM header.
			var p wire.Packet
			g := uint32(0)
			if p.Unmarshal(ev.Data) == nil {
				g = uint32(p.Group)
			}
			dst = [4]byte{239, 77, byte(g >> 8), byte(g)}
		}
		if err := pw.WriteUDP(ev.Time, src, dst, 7000, 7000, ev.Data); err != nil && onErr != nil {
			onErr(err)
		}
	}
}

func nodeIP(id NodeID) [4]byte {
	return [4]byte{10, 77, byte(uint16(id) >> 8), byte(id)}
}
