package perf

import (
	"fmt"
	"testing"
	"time"

	"lbrm/internal/transport"
	"lbrm/internal/transport/udp"
)

// envGrab is a handler that only captures its Env for external sends.
type envGrab struct{ env transport.Env }

func (g *envGrab) Start(env transport.Env)            { g.env = env }
func (g *envGrab) Recv(from transport.Addr, d []byte) {}

// newUDPLoopback builds the loopback ping-pong pair — a sending node and
// an echo-counting receiver over real sockets — and returns the per-op
// pingPong closure plus a teardown. Shared between the UDPLoopback
// benchmark and the allocation gate so both measure the same datapath.
// Errors go through fatalf/skipf so the gate can substitute panics for
// *testing.B methods.
func newUDPLoopback(fatalf, skipf func(format string, args ...any), forceFallback bool) (pingPong, cleanup func()) {
	got := make(chan struct{}, 1)
	sink := transport.NewHandlerFunc(func(env transport.Env, from transport.Addr, data []byte) {
		got <- struct{}{}
	})
	cfg := udp.Config{Listen: "127.0.0.1:0", ForceFallback: forceFallback}
	nr, err := udp.Start(cfg, sink)
	if err != nil {
		skipf("udp unavailable: %v", err)
		return nil, func() {}
	}
	sender := &envGrab{}
	ns, err := udp.Start(cfg, sender)
	if err != nil {
		nr.Close()
		skipf("udp unavailable: %v", err)
		return nil, func() {}
	}
	cleanup = func() { ns.Close(); nr.Close() }

	dst := nr.Addr()
	payload := make([]byte, 256)
	// Both closures are hoisted out of the loop: building the inner
	// func per iteration would allocate, as would time.After's
	// throwaway timer. One persistent timer is reset per wait instead.
	doSend := func() {
		if err := sender.env.Send(dst, payload); err != nil {
			fatalf("send: %v", err)
		}
	}
	send := func() { ns.Do(doSend) }
	timeout := time.NewTimer(time.Hour)
	if !timeout.Stop() {
		<-timeout.C
	}
	wait := func(d time.Duration) bool {
		timeout.Reset(d)
		select {
		case <-got:
			if !timeout.Stop() {
				<-timeout.C
			}
			return true
		case <-timeout.C:
			return false
		}
	}
	pingPong = func() {
		send()
		if !wait(500 * time.Millisecond) {
			// Loopback UDP very rarely drops; allow one retry before
			// declaring failure so the benchmark isn't flaky.
			send()
			if !wait(2 * time.Second) {
				fatalf("datagram lost on loopback")
			}
		}
	}
	return pingPong, cleanup
}

// udpLoopbackWarm is the untimed ping-pong count that warms the
// address-intern maps, batch rings, and dispatch buffers before either
// the benchmark's timed region or the gate's measured region.
const udpLoopbackWarm = 200

// UDPLoopback measures one unicast datagram through the real UDP binding
// on the loopback interface: marshal-free send on one node, kernel
// round-trip, receive dispatch (address interning, handler serialization)
// on the other. Ping-pong with one packet in flight so socket buffers
// never overflow.
func UDPLoopback(b *testing.B) {
	pingPong, cleanup := newUDPLoopback(b.Fatalf, b.Skipf, false)
	defer cleanup()
	for i := 0; i < udpLoopbackWarm; i++ {
		pingPong()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pingPong()
	}
}

// MeasureUDPLoopbackAllocs reports the average allocations of one warm
// loopback round-trip (both goroutines: send coalescing and receive
// dispatch), on the batched path or the forced portable fallback. -1
// means UDP sockets are unavailable in this environment.
func MeasureUDPLoopbackAllocs(runs int, forceFallback bool) float64 {
	fatalf := func(format string, args ...any) {
		panic(fmt.Sprintf("udp loopback: "+format, args...))
	}
	unavailable := false
	skipf := func(format string, args ...any) { unavailable = true }
	pingPong, cleanup := newUDPLoopback(fatalf, skipf, forceFallback)
	if unavailable {
		return -1
	}
	defer cleanup()
	for i := 0; i < udpLoopbackWarm; i++ {
		pingPong()
	}
	return testing.AllocsPerRun(runs, pingPong)
}
