package perf

import (
	"testing"
	"time"

	"lbrm/internal/transport"
	"lbrm/internal/transport/udp"
)

// envGrab is a handler that only captures its Env for external sends.
type envGrab struct{ env transport.Env }

func (g *envGrab) Start(env transport.Env)            { g.env = env }
func (g *envGrab) Recv(from transport.Addr, d []byte) {}

// UDPLoopback measures one unicast datagram through the real UDP binding
// on the loopback interface: marshal-free send on one node, kernel
// round-trip, receive dispatch (address interning, handler serialization)
// on the other. Ping-pong with one packet in flight so socket buffers
// never overflow.
func UDPLoopback(b *testing.B) {
	got := make(chan struct{}, 1)
	sink := transport.NewHandlerFunc(func(env transport.Env, from transport.Addr, data []byte) {
		got <- struct{}{}
	})
	nr, err := udp.Start(udp.Config{Listen: "127.0.0.1:0"}, sink)
	if err != nil {
		b.Skipf("udp unavailable: %v", err)
	}
	defer nr.Close()

	sender := &envGrab{}
	ns, err := udp.Start(udp.Config{Listen: "127.0.0.1:0"}, sender)
	if err != nil {
		b.Skipf("udp unavailable: %v", err)
	}
	defer ns.Close()

	dst := nr.Addr()
	payload := make([]byte, 256)
	send := func() {
		ns.Do(func() {
			if err := sender.env.Send(dst, payload); err != nil {
				b.Error(err)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		send()
		select {
		case <-got:
		case <-time.After(500 * time.Millisecond):
			// Loopback UDP very rarely drops; allow one retry before
			// declaring failure so the benchmark isn't flaky.
			send()
			select {
			case <-got:
			case <-time.After(2 * time.Second):
				b.Fatal("datagram lost on loopback")
			}
		}
	}
}
