package perf

import "testing"

// TestSimEngineTraceEquality pins the engine-equivalence contract the
// headline benchmark relies on: the scale-out engine (timer wheel, bulk
// delivery, parallel islands) and the baseline engine (heap scheduler,
// per-member delivery, sequential) execute the identical packet trace.
// The headline measurement runs with tracing off for speed; this test
// turns the FNV trace hash on for both engines and requires it — and the
// logical event and delivery counts — to be byte-identical, so the
// events/sec ratio in BENCH_4.json compares two executions of the same
// work.
func TestSimEngineTraceEquality(t *testing.T) {
	opts := scenario1k()
	opts.Trace = true
	scaled, err := MeasureSimEngine(opts, false)
	if err != nil {
		t.Fatal(err)
	}
	base, err := MeasureSimEngine(opts, true)
	if err != nil {
		t.Fatal(err)
	}
	if scaled.TraceHash != base.TraceHash {
		t.Errorf("trace hash: scale-out %016x != baseline %016x", scaled.TraceHash, base.TraceHash)
	}
	if scaled.Events != base.Events {
		t.Errorf("logical events: scale-out %d != baseline %d", scaled.Events, base.Events)
	}
	if scaled.Deliveries != base.Deliveries {
		t.Errorf("deliveries: scale-out %d != baseline %d", scaled.Deliveries, base.Deliveries)
	}
	if scaled.Deliveries == 0 {
		t.Fatal("scenario delivered nothing; the comparison is vacuous")
	}
}

func BenchmarkSimEngine1k(b *testing.B)         { SimEngine1k(b) }
func BenchmarkSimEngine1kBaseline(b *testing.B) { SimEngine1kBaseline(b) }
