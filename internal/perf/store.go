package perf

import (
	"testing"
	"time"

	"lbrm/internal/logger"
)

// benchStart pins the store timestamps so age-based retention never kicks
// in during benchmarks that don't ask for it.
var benchStart = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// StorePut measures steady-state sequential logging under a packet-count
// cap: every Put lands in the ring and (once warm) evicts the oldest
// entry — the secondary logger's exact per-data-packet store cost.
func StorePut(b *testing.B) {
	s := logger.NewStore(logger.Retention{MaxPackets: 4096})
	defer s.Close()
	payload := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.Put(uint64(i+1), payload, benchStart) {
			b.Fatal("Put rejected fresh seq")
		}
	}
}

// StorePutUnbounded measures logging with no retention pressure (growth
// path included).
func StorePutUnbounded(b *testing.B) {
	s := logger.NewStore(logger.Retention{})
	defer s.Close()
	payload := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put(uint64(i+1), payload, benchStart)
	}
}

// StoreGet measures retransmission lookup over a warm store.
func StoreGet(b *testing.B) {
	const n = 4096
	s := logger.NewStore(logger.Retention{MaxPackets: n})
	defer s.Close()
	payload := make([]byte, 128)
	for seq := uint64(1); seq <= n; seq++ {
		s.Put(seq, payload, benchStart)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := uint64(i%n) + 1
		if _, ok := s.Get(seq); !ok {
			b.Fatalf("Get(%d) missing", seq)
		}
	}
}

// StoreEvictByBytes measures the byte-budget eviction path: each Put must
// evict a previous payload to stay under budget.
func StoreEvictByBytes(b *testing.B) {
	s := logger.NewStore(logger.Retention{MaxBytes: 64 * 1024})
	defer s.Close()
	payload := make([]byte, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put(uint64(i+1), payload, benchStart)
	}
}

// StoreMissingSteady measures the gap computation on a gapless stream (the
// per-packet checkGaps cost when nothing is lost).
func StoreMissingSteady(b *testing.B) {
	s := logger.NewStore(logger.Retention{MaxPackets: 1024})
	defer s.Close()
	for seq := uint64(1); seq <= 1024; seq++ {
		s.Put(seq, nil, benchStart)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m := s.Missing(0, 0); len(m) != 0 {
			b.Fatal("unexpected gaps")
		}
	}
}
