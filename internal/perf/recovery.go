package perf

import (
	"testing"
	"time"

	"lbrm/internal/core"
	"lbrm/internal/logger"
	"lbrm/internal/transport/transporttest"
	"lbrm/internal/wire"
)

// RecoveryRTT measures one complete loss-recovery episode end to end over
// the simulated transport: a receiver observes a gap, its NACK timer
// fires, the NACK reaches the secondary logger, and the logged packet is
// retransmitted and delivered. The cost reported is the full protocol
// work per healed loss (both endpoints), excluding only wire latency.
func RecoveryRTT(b *testing.B) {
	const group = 1
	senderAddr := transporttest.Addr("sender")

	secEnv := transporttest.NewEnv("sec")
	sec := logger.NewSecondary(logger.SecondaryConfig{
		Group:     group,
		Retention: logger.Retention{MaxPackets: 1 << 16},
	})
	sec.Start(secEnv)
	secAddr := secEnv.LocalAddr()

	rcvEnv := transporttest.NewEnv("rcv")
	rcv := core.NewReceiver(core.ReceiverConfig{
		Group:          group,
		Secondary:      secAddr,
		NackDelay:      time.Millisecond,
		RequestTimeout: 10 * time.Millisecond,
	})
	rcv.Start(rcvEnv)
	rcvAddr := rcvEnv.LocalAddr()

	var scratch []byte
	data := func(seq uint64) []byte {
		p := wire.Packet{
			Type: wire.TypeData, Source: 7, Group: group, Seq: seq, Epoch: 1,
			Payload: []byte("recovery-payload"),
		}
		var err error
		scratch, err = p.AppendMarshal(scratch[:0])
		if err != nil {
			b.Fatal(err)
		}
		return scratch
	}

	// Prime both ends with seq 1 so later gaps read as losses, not joins.
	sec.Recv(senderAddr, data(1))
	rcv.Recv(senderAddr, data(1))
	rcvEnv.TakeSents()

	seq := uint64(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lost, next := seq+1, seq+2
		seq += 2
		sec.Recv(senderAddr, data(lost))
		sec.Recv(senderAddr, data(next))
		rcv.Recv(senderAddr, data(next)) // receiver never sees lost
		rcvEnv.Advance(2 * time.Millisecond)
		secEnv.Advance(2 * time.Millisecond) // drain re-multicast windows
		nacks := rcvEnv.TakeSents()
		if len(nacks) == 0 {
			b.Fatalf("no NACK emitted for seq %d", lost)
		}
		for _, n := range nacks {
			sec.Recv(rcvAddr, n.Data)
		}
		reps := secEnv.TakeSents()
		if len(reps) == 0 {
			b.Fatalf("no retransmission for seq %d", lost)
		}
		for _, rp := range reps {
			rcv.Recv(secAddr, rp.Data)
		}
		// Let the receiver's request retry timer fire into a healed
		// stream so it disarms before the next episode's gap.
		rcvEnv.Advance(20 * time.Millisecond)
		rcvEnv.TakeSents()
	}
	b.StopTimer()
	if got, want := rcv.Stats().DataDelivered, uint64(2*b.N+1); got != want {
		b.Fatalf("delivered %d packets, want %d", got, want)
	}
}
