package perf

import (
	"fmt"
	"testing"
	"time"

	"lbrm/internal/core"
	"lbrm/internal/logger"
	"lbrm/internal/transport"
	"lbrm/internal/transport/transporttest"
	"lbrm/internal/wire"
)

// newRecoveryBench wires one secondary logger and one receiver over the
// simulated transport and returns an episode driver: each call loses one
// packet, lets the receiver's NACK timer fire, routes the NACK to the
// secondary, and delivers the retransmission. check verifies the
// receiver really delivered both packets of every episode (plus the
// priming packet), so a silently broken loop cannot report a fast time.
func newRecoveryBench(fatalf func(format string, args ...any)) (episode func(), check func(episodes int)) {
	const group = 1
	// Pre-boxed as the interface type: passing a concrete Addr to Recv
	// would heap-allocate the interface conversion on every call.
	var senderAddr transport.Addr = transporttest.Addr("sender")

	secEnv := transporttest.NewEnv("sec")
	sec := logger.NewSecondary(logger.SecondaryConfig{
		Group: group,
		// A bounded ring (not growth-heavy 1<<16): the episode loop only
		// ever needs the last few packets, and a fixed-size ring keeps the
		// steady state allocation-free once warmed.
		Retention: logger.Retention{MaxPackets: 4096},
	})
	sec.Start(secEnv)
	secAddr := secEnv.LocalAddr()

	rcvEnv := transporttest.NewEnv("rcv")
	rcv := core.NewReceiver(core.ReceiverConfig{
		Group:          group,
		Secondary:      secAddr,
		NackDelay:      time.Millisecond,
		RequestTimeout: 10 * time.Millisecond,
	})
	rcv.Start(rcvEnv)
	rcvAddr := rcvEnv.LocalAddr()

	var scratch []byte
	payload := []byte("recovery-payload")
	data := func(seq uint64) []byte {
		p := wire.Packet{
			Type: wire.TypeData, Source: 7, Group: group, Seq: seq, Epoch: 1,
			Payload: payload,
		}
		var err error
		scratch, err = p.AppendMarshal(scratch[:0])
		if err != nil {
			fatalf("marshal: %v", err)
		}
		return scratch
	}

	// Prime both ends with seq 1 so later gaps read as losses, not joins.
	sec.Recv(senderAddr, data(1))
	rcv.Recv(senderAddr, data(1))
	rcvEnv.TakeSents()

	seq := uint64(1)
	episode = func() {
		lost, next := seq+1, seq+2
		seq += 2
		sec.Recv(senderAddr, data(lost))
		sec.Recv(senderAddr, data(next))
		rcv.Recv(senderAddr, data(next)) // receiver never sees lost
		rcvEnv.Advance(2 * time.Millisecond)
		secEnv.Advance(2 * time.Millisecond) // drain re-multicast windows
		nacks := rcvEnv.TakeSents()
		if len(nacks) == 0 {
			fatalf("no NACK emitted for seq %d", lost)
		}
		for _, n := range nacks {
			sec.Recv(rcvAddr, n.Data)
		}
		reps := secEnv.TakeSents()
		if len(reps) == 0 {
			fatalf("no retransmission for seq %d", lost)
		}
		for _, rp := range reps {
			rcv.Recv(secAddr, rp.Data)
		}
		// Let the receiver's request retry timer fire into a healed
		// stream so it disarms before the next episode's gap.
		rcvEnv.Advance(20 * time.Millisecond)
		rcvEnv.TakeSents()
	}
	check = func(episodes int) {
		if got, want := rcv.Stats().DataDelivered, uint64(2*episodes+1); got != want {
			fatalf("delivered %d packets, want %d", got, want)
		}
	}
	return episode, check
}

// recoveryWarm is how many episodes it takes to get past every amortized
// growth source (retention ring, timer pools, capture buffers) so the
// timed region measures the protocol's steady state, which
// TestRecoveryZeroAlloc pins at zero allocations.
const recoveryWarm = 3000

// RecoveryRTT measures one complete loss-recovery episode end to end over
// the simulated transport: a receiver observes a gap, its NACK timer
// fires, the NACK reaches the secondary logger, and the logged packet is
// retransmitted and delivered. The cost reported is the full protocol
// work per healed loss (both endpoints), excluding only wire latency.
func RecoveryRTT(b *testing.B) {
	episode, check := newRecoveryBench(b.Fatalf)
	for i := 0; i < recoveryWarm; i++ {
		episode()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		episode()
	}
	b.StopTimer()
	check(recoveryWarm + b.N)
}

// MeasureRecoveryAllocs returns the average allocations per steady-state
// recovery episode over runs iterations.
func MeasureRecoveryAllocs(runs int) float64 {
	episode, _ := newRecoveryBench(func(format string, args ...any) {
		panic(fmt.Sprintf("perf: "+format, args...))
	})
	for i := 0; i < recoveryWarm; i++ {
		episode()
	}
	return testing.AllocsPerRun(runs, episode)
}
