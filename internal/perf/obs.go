package perf

import (
	"testing"

	"lbrm/internal/obs"
	"lbrm/internal/obs/series"
)

// ObsCounterInc benchmarks the metric hot path: one preregistered counter
// increment — a single atomic add behind a nil check. This is the cost
// every instrumented protocol event pays.
func ObsCounterInc(b *testing.B) {
	c := obs.NewSink().Counter("bench.counter")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// ObsClassRecord benchmarks the per-send transmit accounting: two atomic
// adds (packet + byte counters) indexed by traffic class.
func ObsClassRecord(b *testing.B) {
	cc := obs.NewSink().Classes("bench.tx", []string{"data", "heartbeat", "nack"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cc.Record(i%3, 45)
	}
}

// ObsTraceEmit benchmarks the trace-ring append: one seqlock-stamped slot
// write, wait-free and allocation-free, overwriting the oldest event when
// the ring is full.
func ObsTraceEmit(b *testing.B) {
	r := obs.NewRing(512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Emit(int64(i), obs.KindEpochBump, uint64(i), 0, 0)
	}
}

// SeriesSample benchmarks one full time-series sample over a realistic
// daemon registry — the per-tick cost of the control plane's history
// (DESIGN.md §15): a seqlock slot open, one atomic load+store per
// counter/gauge track, bucket-major stores per histogram, and the
// publish. This is what every daemon pays at its sampling cadence.
func SeriesSample(b *testing.B) {
	sink := obs.NewSink()
	for i := 0; i < 24; i++ {
		sink.Counter(counterName(i)).Add(uint64(i))
	}
	sink.Gauge("bench.gauge").Set(7)
	h := sink.Histogram("bench.hist_ms", []uint64{1, 5, 10, 25, 50, 100, 250, 500, 1000})
	for i := 0; i < 100; i++ {
		h.Observe(uint64(i))
	}
	s := series.NewSampler(sink.Registry(), 256)
	s.Sample(0) // first sample does the one-time track scan
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(int64(i))
	}
}

// counterName avoids fmt in the registration loop (registration is cold;
// this just keeps the benchmark setup tidy).
func counterName(i int) string {
	return "bench.counter." + string(rune('a'+i%26))
}

// ObsFlightEmit benchmarks the flight-recorder append through the sink:
// the per-hop cost of the causal recovery trace (DESIGN.md §10) — the
// same seqlock write plus the sink indirection the protocol handlers pay.
func ObsFlightEmit(b *testing.B) {
	s := obs.NewSink()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.EmitFlight(int64(i), obs.KindDeliver, uint64(i), 1, 0)
	}
}
