package perf

import (
	"testing"

	"lbrm/internal/obs"
)

// ObsCounterInc benchmarks the metric hot path: one preregistered counter
// increment — a single atomic add behind a nil check. This is the cost
// every instrumented protocol event pays.
func ObsCounterInc(b *testing.B) {
	c := obs.NewSink().Counter("bench.counter")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// ObsClassRecord benchmarks the per-send transmit accounting: two atomic
// adds (packet + byte counters) indexed by traffic class.
func ObsClassRecord(b *testing.B) {
	cc := obs.NewSink().Classes("bench.tx", []string{"data", "heartbeat", "nack"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cc.Record(i%3, 45)
	}
}

// ObsTraceEmit benchmarks the trace-ring append: one seqlock-stamped slot
// write, wait-free and allocation-free, overwriting the oldest event when
// the ring is full.
func ObsTraceEmit(b *testing.B) {
	r := obs.NewRing(512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Emit(int64(i), obs.KindEpochBump, uint64(i), 0, 0)
	}
}

// ObsFlightEmit benchmarks the flight-recorder append through the sink:
// the per-hop cost of the causal recovery trace (DESIGN.md §10) — the
// same seqlock write plus the sink indirection the protocol handlers pay.
func ObsFlightEmit(b *testing.B) {
	s := obs.NewSink()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.EmitFlight(int64(i), obs.KindDeliver, uint64(i), 1, 0)
	}
}
