package perf

import (
	"fmt"
	"testing"

	"lbrm/internal/logger"
	"lbrm/internal/obs"
	"lbrm/internal/transport"
	"lbrm/internal/transport/transporttest"
	"lbrm/internal/wire"
)

// newQuorumBench wires a quorum-mode primary (write quorum 2) and two ring
// replicas over the simulated transport and returns a full-ring-revolution
// driver: each call logs one data packet at the primary (launching the ring
// token), forwards the token through both replica hops, and returns it to
// the primary, which folds the watermarks and mints the quorum-gated source
// ack. This is the entire per-packet cost quorum mode adds to the logger —
// TestQuorumHopZeroAlloc pins it at zero steady-state allocations so the
// ring bookkeeping (launch buffer, watermark buffers, rank sort, RTT
// histogram, flight emission) can never leak onto the hot path.
func newQuorumBench(sink *obs.Sink, fatalf func(format string, args ...any)) (revolution func(), check func(revolutions int)) {
	const group = 1
	var senderAddr transport.Addr = transporttest.Addr("sender")

	priEnv := transporttest.NewEnv("pri")
	r1Env := transporttest.NewEnv("r1")
	r2Env := transporttest.NewEnv("r2")
	r1Addr, r2Addr := r1Env.LocalAddr(), r2Env.LocalAddr()
	priAddr := priEnv.LocalAddr()

	retention := logger.Retention{MaxPackets: 4096}
	pri := logger.NewPrimary(logger.PrimaryConfig{
		Group: group, Quorum: 2, Retention: retention,
		Replicas: []transport.Addr{r1Addr, r2Addr}, Obs: sink,
	})
	r1 := logger.NewPrimary(logger.PrimaryConfig{
		Group: group, Quorum: 2, Replica: true, Retention: retention, Obs: sink,
	})
	r2 := logger.NewPrimary(logger.PrimaryConfig{
		Group: group, Quorum: 2, Replica: true, Retention: retention, Obs: sink,
	})
	pri.Start(priEnv)
	r1.Start(r1Env)
	r2.Start(r2Env)

	// Install the ring roles (the primary sent them at Start).
	for _, s := range priEnv.TakeSents() {
		switch s.To {
		case r1Addr:
			r1.Recv(priAddr, s.Data)
		case r2Addr:
			r2.Recv(priAddr, s.Data)
		}
	}

	var scratch []byte
	payload := []byte("quorum-ring-payload")
	data := func(seq uint64) []byte {
		p := wire.Packet{
			Type: wire.TypeData, Source: 7, Group: group, Seq: seq, Epoch: 1,
			Payload: payload,
		}
		var err error
		scratch, err = p.AppendMarshal(scratch[:0])
		if err != nil {
			fatalf("marshal: %v", err)
		}
		return scratch
	}

	seq := uint64(0)
	revolution = func() {
		seq++
		pri.Recv(senderAddr, data(seq)) // log + token launch (+ parked ack)
		for _, s := range priEnv.TakeSents() {
			if s.To == r1Addr {
				r1.Recv(priAddr, s.Data)
			}
		}
		for _, s := range r1Env.TakeSents() {
			r2.Recv(r1Addr, s.Data)
		}
		for _, s := range r2Env.TakeSents() {
			pri.Recv(r2Addr, s.Data) // return hop: fold + quorum ack
		}
	}
	check = func(revolutions int) {
		n := uint64(revolutions)
		ps := pri.Stats()
		if ps.QuorumLaunched != n || ps.QuorumReturns != n {
			fatalf("launched/returned %d/%d tokens, want %d", ps.QuorumLaunched, ps.QuorumReturns, n)
		}
		if got := r2.Stats().QuorumApplied; got != n {
			fatalf("last hop applied %d packets, want %d", got, n)
		}
		// One quorum-gated ack per token return; parked duplicates at data
		// arrival are rate-limited away (the clock never moves here).
		if got := ps.SourceAcks; got < n {
			fatalf("SourceAcks = %d, want ≥ %d (one per token return)", got, n)
		}
	}
	return revolution, check
}

// quorumWarm covers amortized growth: retention rings, the launch buffer,
// watermark/rank scratch, capture buffers, and per-stream map buckets.
const quorumWarm = 3000

// QuorumRingHop measures one full ring revolution (log, launch, two
// forwarding hops, return fold, quorum-gated ack).
func QuorumRingHop(b *testing.B) {
	revolution, check := newQuorumBench(obs.NewSink(), b.Fatalf)
	for i := 0; i < quorumWarm; i++ {
		revolution()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		revolution()
	}
	b.StopTimer()
	check(quorumWarm + b.N)
}

// MeasureQuorumHopAllocs returns the average allocations per steady-state
// ring revolution over runs iterations.
func MeasureQuorumHopAllocs(runs int, sink *obs.Sink) float64 {
	revolution, check := newQuorumBench(sink, func(format string, args ...any) {
		panic(fmt.Sprintf("perf: "+format, args...))
	})
	for i := 0; i < quorumWarm; i++ {
		revolution()
	}
	allocs := testing.AllocsPerRun(runs, revolution)
	check(quorumWarm + runs + 1) // AllocsPerRun does one extra warm-up call
	return allocs
}
