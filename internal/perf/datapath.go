package perf

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"lbrm/internal/logger"
	"lbrm/internal/obs"
	"lbrm/internal/obs/series"
	"lbrm/internal/transport"
	"lbrm/internal/vtime"
	"lbrm/internal/wire"
)

// nullAddr is a comparable no-op transport address.
type nullAddr string

func (nullAddr) Network() string  { return "null" }
func (a nullAddr) String() string { return "null:" + string(a) }

// nullEnv is a transport.Env that discards transmissions. It exists so the
// allocation gate measures the protocol handler alone: any allocation
// observed on top of it belongs to the handler, not the transport.
type nullEnv struct {
	clock *vtime.Sim
	rng   *rand.Rand
}

func newNullEnv() *nullEnv {
	return &nullEnv{clock: vtime.NewSim(benchStart), rng: rand.New(rand.NewSource(1))}
}

func (e *nullEnv) Now() time.Time { return e.clock.Now() }
func (e *nullEnv) AfterFunc(d time.Duration, fn func()) vtime.Timer {
	return e.clock.AfterFunc(d, fn)
}
func (e *nullEnv) Send(to transport.Addr, data []byte) error            { return nil }
func (e *nullEnv) Multicast(g wire.GroupID, ttl int, data []byte) error { return nil }
func (e *nullEnv) Join(g wire.GroupID) error                            { return nil }
func (e *nullEnv) Leave(g wire.GroupID) error                           { return nil }
func (e *nullEnv) LocalAddr() transport.Addr                            { return nullAddr("logger") }
func (e *nullEnv) ParseAddr(s string) (transport.Addr, error) {
	rest, ok := strings.CutPrefix(s, "null:")
	if !ok {
		return nil, fmt.Errorf("perf: bad address %q", s)
	}
	return nullAddr(rest), nil
}
func (e *nullEnv) Rand() *rand.Rand { return e.rng }

// datapath drives the steady-state secondary-logger pipeline the paper
// identifies as the hot one ("every secondary logging server logs every
// packet", §2.2): marshal a data packet, Recv it, log it in the store
// (evicting at capacity), and emit the Designated-Acker ACK.
type datapath struct {
	sec     *logger.Secondary
	sink    *obs.Sink
	src     transport.Addr
	pkt     wire.Packet
	buf     []byte
	seq     uint64
	payload []byte
}

func newDatapath(sink *obs.Sink) *datapath {
	d := &datapath{
		sink:    sink,
		src:     nullAddr("sender"),
		payload: make([]byte, 128),
	}
	d.sec = logger.NewSecondary(logger.SecondaryConfig{
		Group:     1,
		Retention: logger.Retention{MaxPackets: 4096},
		Obs:       sink,
	})
	d.sec.Start(newNullEnv())
	// Volunteer this logger as Designated Acker with certainty (PAck 1),
	// so every logged data packet also exercises ACK emission.
	sel := wire.Packet{
		Type: wire.TypeAckerSelect, Source: 7, Group: 1, Epoch: 1, PAck: 1, K: 1,
	}
	buf, err := sel.Marshal()
	if err != nil {
		panic(err)
	}
	d.sec.Recv(d.src, buf)
	if d.sec.Stats().AckerSelections != 1 {
		panic("perf: datapath logger did not take acker duty")
	}
	return d
}

// step pushes one data packet through the pipeline.
func (d *datapath) step() {
	d.seq++
	d.pkt = wire.Packet{
		Type: wire.TypeData, Source: 7, Group: 1, Seq: d.seq, Epoch: 1,
		Payload: d.payload,
	}
	var err error
	d.buf, err = d.pkt.AppendMarshal(d.buf[:0])
	if err != nil {
		panic(err)
	}
	d.sec.Recv(d.src, d.buf)
	// Flight-record emission rides the same step so the alloc gate covers
	// the recorder's hot path (a recovery chain emits a handful of these).
	d.sink.EmitFlight(int64(d.seq), obs.KindDeliver, d.seq, uint64(wire.PathLocal), 0)
}

// warm runs the pipeline past its growth phase: ring at capacity, arena
// chunks recycling, scratch buffers at their steady size.
func (d *datapath) warm() {
	for i := 0; i < 8192; i++ {
		d.step()
	}
	logged := d.sec.Stats().PacketsLogged
	acked := d.sec.Stats().AcksSent
	if logged != d.seq || acked != d.seq {
		panic(fmt.Sprintf("perf: datapath warmup logged %d acked %d of %d", logged, acked, d.seq))
	}
}

// DatapathAllocs benchmarks the steady-state data→log→ack pipeline. The
// companion gate TestDatapathZeroAlloc asserts it allocates nothing.
func DatapathAllocs(b *testing.B) {
	d := newDatapath(nil)
	d.warm()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.step()
	}
}

// DatapathAllocsObs is the same pipeline with a live observability sink
// attached: per-class tx counters, protocol counters and the epoch gauge
// all firing. The zero-allocation contract must survive instrumentation —
// that is the whole point of the obs design (DESIGN.md §9).
func DatapathAllocsObs(b *testing.B) {
	d := newDatapath(obs.NewSink())
	d.warm()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.step()
	}
}

// MeasureDatapathAllocs returns the average allocations per steady-state
// pipeline step over runs iterations, with metrics attached when sink is
// non-nil.
func MeasureDatapathAllocs(runs int, sink *obs.Sink) float64 {
	d := newDatapath(sink)
	d.warm()
	return testing.AllocsPerRun(runs, d.step)
}

// MeasureDatapathAllocsSampled is the instrumented pipeline with the
// series sampler live on the same registry: every step also takes a full
// time-series sample (the control plane's per-tick cost, compressed to
// per-step so AllocsPerRun sees it deterministically). The registry's
// track set is stable after warmup, so sampling must stay on the
// steady-state zero-allocation path too.
func MeasureDatapathAllocsSampled(runs int) float64 {
	sink := obs.NewSink()
	d := newDatapath(sink)
	d.warm()
	smp := series.NewSampler(sink.Registry(), 256)
	smp.Sample(0) // one-time track scan, off the measured path
	var tick int64
	return testing.AllocsPerRun(runs, func() {
		d.step()
		tick++
		smp.Sample(tick)
	})
}
