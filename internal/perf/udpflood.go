package perf

import (
	"net"
	"testing"

	"lbrm/internal/shard"
	"lbrm/internal/transport"
	"lbrm/internal/transport/udp"
	"lbrm/internal/wire"
)

// flood holds the mutable state of one egress flood so the burst closure
// can be built once and reused: rebuilding it per critical section would
// put an allocation inside the measured loop.
type flood struct {
	env     transport.Env
	dst     transport.Addr
	payload []byte
	count   int
}

func (f *flood) burst() {
	for j := 0; j < f.count; j++ {
		if err := f.env.Send(f.dst, f.payload); err != nil {
			panic(err)
		}
	}
}

// newFloodSink binds a throwaway UDP socket for the flood to aim at. The
// sink is never read: egress cost is what is being measured, and loopback
// UDP drops at the receive buffer without back-pressuring the sender. The
// socket must exist, though — a closed port would answer every datagram
// with ICMP unreachable.
func newFloodSink(b *testing.B) *net.UDPConn {
	sink, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		b.Skipf("udp unavailable: %v", err)
	}
	b.Cleanup(func() { sink.Close() })
	return sink
}

// udpEgress floods b.N 256-byte datagrams through one node, enqueueing
// `burst` packets per critical section so egress coalescing sees full
// rings, and reports achieved packets/second as the "pps" metric. This is
// the datapath headline: BENCH_2.json's udp_pps_per_core field comes from
// the UDPEgress variant.
func udpEgress(b *testing.B, batch int, forceFallback bool) {
	sink := newFloodSink(b)

	sender := &envGrab{}
	ns, err := udp.Start(udp.Config{
		Listen:        "127.0.0.1:0",
		Batch:         batch,
		ForceFallback: forceFallback,
	}, sender)
	if err != nil {
		b.Skipf("udp unavailable: %v", err)
	}
	defer ns.Close()

	fl := &flood{env: sender.env, payload: make([]byte, 256)}
	ns.Do(func() {
		fl.dst, err = sender.env.ParseAddr(sink.LocalAddr().String())
	})
	if err != nil {
		b.Fatal(err)
	}

	burst := batch
	if burst <= 0 {
		burst = udp.DefaultBatch
	}
	fl.count = burst
	for i := 0; i < 50; i++ { // warm rings, dst cache, scratch buffers
		ns.Do(fl.burst)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for sent := 0; sent < b.N; sent += fl.count {
		if rem := b.N - sent; rem < burst {
			fl.count = rem
		}
		ns.Do(fl.burst)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pps")
}

// UDPEgress is the headline batched-egress flood at the default batch.
func UDPEgress(b *testing.B) { udpEgress(b, 0, false) }

// UDPEgressFallback is the same flood with batching disabled, measuring
// the portable one-syscall-per-packet path the non-Linux build uses.
func UDPEgressFallback(b *testing.B) { udpEgress(b, 0, true) }

// udpEgressB generates the batch-sweep entries (B=1 is the degenerate
// ring: batch machinery on, one packet per flush).
func udpEgressB(batch int) func(*testing.B) {
	return func(b *testing.B) { udpEgress(b, batch, false) }
}

// ShardedEgress floods through a 4-shard Fleet round-robin across groups,
// so every shard's private ring and socket is on the hot path. Per-packet
// cost should track UDPEgress: sharding adds routing (Assign + one map
// hit), not serialization.
func ShardedEgress(b *testing.B) {
	const shards = 4
	sink := newFloodSink(b)

	grabs := make([]*envGrab, shards)
	fleet, err := shard.Start(shard.Config{
		Shards: shards,
		Node:   udp.Config{Listen: "127.0.0.1:0"},
	}, func(s int, _ []wire.GroupID) transport.Handler {
		grabs[s] = &envGrab{}
		return grabs[s]
	})
	if err != nil {
		b.Skipf("udp unavailable: %v", err)
	}
	defer fleet.Close()

	dstSpec := sink.LocalAddr().String()
	fls := make([]*flood, shards)
	payload := make([]byte, 256)
	for s := 0; s < shards; s++ {
		fl := &flood{env: grabs[s].env, payload: payload, count: udp.DefaultBatch}
		fleet.Node(s).Do(func() {
			fl.dst, err = fl.env.ParseAddr(dstSpec)
		})
		if err != nil {
			b.Fatal(err)
		}
		fls[s] = fl
	}

	for i := 0; i < 50*shards; i++ { // warm every shard's ring
		g := wire.GroupID(i%shards + 1)
		fleet.Do(g, fls[shard.Assign(g, shards)].burst)
	}
	b.ReportAllocs()
	b.ResetTimer()
	g := wire.GroupID(0)
	for sent := 0; sent < b.N; {
		g = g%shards + 1
		fl := fls[shard.Assign(g, shards)]
		if rem := b.N - sent; rem < udp.DefaultBatch {
			fl.count = rem
		}
		fleet.Do(g, fl.burst)
		sent += fl.count
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pps")
}
