// Package perf holds the per-stage micro-benchmarks for the LBRM hot
// datapath: log store put/get/evict, the zero-allocation secondary-logger
// pipeline (data → log → ack), real-UDP loopback, and an end-to-end
// recovery episode. The benchmark bodies live in the package proper (not
// _test files) so cmd/lbrm-perf can run them with testing.Benchmark and
// record the trajectory in BENCH_1.json; thin Benchmark* wrappers in
// perf_test.go expose them to `go test -bench`.
//
// The allocation contract these benchmarks enforce is documented in
// DESIGN.md ("Datapath allocation contract"): TestDatapathZeroAlloc fails
// the build if the steady-state logger path allocates at all.
package perf

import "testing"

// Bench names one benchmark for the runner.
type Bench struct {
	Name string
	F    func(*testing.B)
}

// All lists every micro-benchmark in reporting order.
func All() []Bench {
	return []Bench{
		{"StorePut", StorePut},
		{"StorePutUnbounded", StorePutUnbounded},
		{"StoreGet", StoreGet},
		{"StoreEvictByBytes", StoreEvictByBytes},
		{"StoreMissingSteady", StoreMissingSteady},
		{"DatapathAllocs", DatapathAllocs},
		{"DatapathAllocsObs", DatapathAllocsObs},
		{"ObsCounterInc", ObsCounterInc},
		{"ObsClassRecord", ObsClassRecord},
		{"ObsTraceEmit", ObsTraceEmit},
		{"ObsFlightEmit", ObsFlightEmit},
		{"RecoveryRTT", RecoveryRTT},
		{"UDPLoopback", UDPLoopback},
		{"UDPEgress", UDPEgress},
		{"UDPEgressFallback", UDPEgressFallback},
		{"UDPEgressB1", udpEgressB(1)},
		{"UDPEgressB8", udpEgressB(8)},
		{"UDPEgressB64", udpEgressB(64)},
		{"ShardedEgress", ShardedEgress},
		{"SimEngine1k", SimEngine1k},
		{"SimEngine1kBaseline", SimEngine1kBaseline},
	}
}
