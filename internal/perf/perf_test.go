package perf

import (
	"testing"

	"lbrm/internal/obs"
)

// TestDatapathZeroAlloc is the allocation gate: the steady-state
// data→log→ack pipeline of a secondary logger must not allocate — bare,
// and with a live observability sink attached (per-class tx counters,
// protocol counters, epoch gauge, and a flight-record emission per step
// all firing). Any regression — a timer re-wrap, a map that stopped being
// pooled, an escape-analysis break, a metric that allocates — fails this
// test, not just a benchmark report.
func TestDatapathZeroAlloc(t *testing.T) {
	if allocs := MeasureDatapathAllocs(5000, nil); allocs != 0 {
		t.Fatalf("steady-state datapath allocates %.2f allocs/op, want 0", allocs)
	}
	if allocs := MeasureDatapathAllocs(5000, obs.NewSink()); allocs != 0 {
		t.Fatalf("instrumented datapath allocates %.2f allocs/op, want 0", allocs)
	}
	if allocs := MeasureDatapathAllocsSampled(5000); allocs != 0 {
		t.Fatalf("datapath with live series sampler allocates %.2f allocs/op, want 0", allocs)
	}
}

// TestRecoveryZeroAlloc pins the end-to-end recovery episode — gap
// detect, NACK arm/fire, request decode, retransmit lookup, redelivery —
// at zero steady-state allocations. It guards the episode pools (reqCount
// recycling, persistent nack/retry timers, decoder Ranges reuse, scratch
// slices) the same way TestDatapathZeroAlloc guards the logging pipeline.
func TestRecoveryZeroAlloc(t *testing.T) {
	if allocs := MeasureRecoveryAllocs(2000); allocs != 0 {
		t.Fatalf("steady-state recovery episode allocates %.2f allocs/op, want 0", allocs)
	}
}

// TestQuorumHopZeroAlloc pins the quorum-mode ring revolution — token
// launch at the primary, payload apply + watermark append at each replica
// hop, and the return fold with the quorum-gated source ack — at zero
// steady-state allocations, bare and fully instrumented. Quorum mode's
// bookkeeping must ride the existing zero-allocation logger hot path.
func TestQuorumHopZeroAlloc(t *testing.T) {
	if allocs := MeasureQuorumHopAllocs(2000, nil); allocs != 0 {
		t.Fatalf("steady-state ring revolution allocates %.2f allocs/op, want 0", allocs)
	}
	if allocs := MeasureQuorumHopAllocs(2000, obs.NewSink()); allocs != 0 {
		t.Fatalf("instrumented ring revolution allocates %.2f allocs/op, want 0", allocs)
	}
}

// TestUDPLoopbackZeroAlloc pins the real-socket round-trip — egress
// coalescing, sendmmsg/GSO flush, recvmmsg dispatch with address
// interning — at zero steady-state allocations, on the batched path and
// on the forced portable fallback (the path every non-Linux build runs).
func TestUDPLoopbackZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name     string
		fallback bool
	}{{"batched", false}, {"fallback", true}} {
		t.Run(tc.name, func(t *testing.T) {
			allocs := MeasureUDPLoopbackAllocs(1000, tc.fallback)
			if allocs < 0 {
				t.Skip("udp unavailable")
			}
			if allocs != 0 {
				t.Fatalf("steady-state loopback round-trip allocates %.2f allocs/op, want 0", allocs)
			}
		})
	}
}

func BenchmarkStorePut(b *testing.B)           { StorePut(b) }
func BenchmarkStorePutUnbounded(b *testing.B)  { StorePutUnbounded(b) }
func BenchmarkStoreGet(b *testing.B)           { StoreGet(b) }
func BenchmarkStoreEvictByBytes(b *testing.B)  { StoreEvictByBytes(b) }
func BenchmarkStoreMissingSteady(b *testing.B) { StoreMissingSteady(b) }
func BenchmarkDatapathAllocs(b *testing.B)     { DatapathAllocs(b) }
func BenchmarkDatapathAllocsObs(b *testing.B)  { DatapathAllocsObs(b) }
func BenchmarkObsCounterInc(b *testing.B)      { ObsCounterInc(b) }
func BenchmarkObsClassRecord(b *testing.B)     { ObsClassRecord(b) }
func BenchmarkObsTraceEmit(b *testing.B)       { ObsTraceEmit(b) }
func BenchmarkObsFlightEmit(b *testing.B)      { ObsFlightEmit(b) }
func BenchmarkSeriesSample(b *testing.B)       { SeriesSample(b) }
func BenchmarkRecoveryRTT(b *testing.B)        { RecoveryRTT(b) }
func BenchmarkUDPLoopback(b *testing.B)        { UDPLoopback(b) }
func BenchmarkUDPEgress(b *testing.B)          { UDPEgress(b) }
func BenchmarkUDPEgressFallback(b *testing.B)  { UDPEgressFallback(b) }
func BenchmarkUDPEgressB1(b *testing.B)        { udpEgressB(1)(b) }
func BenchmarkUDPEgressB8(b *testing.B)        { udpEgressB(8)(b) }
func BenchmarkUDPEgressB64(b *testing.B)       { udpEgressB(64)(b) }
func BenchmarkShardedEgress(b *testing.B)      { ShardedEgress(b) }
