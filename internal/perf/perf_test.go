package perf

import "testing"

// TestDatapathZeroAlloc is the allocation gate: the steady-state
// data→log→ack pipeline of a secondary logger must not allocate. Any
// regression — a timer re-wrap, a map that stopped being pooled, an
// escape-analysis break — fails this test, not just a benchmark report.
func TestDatapathZeroAlloc(t *testing.T) {
	if allocs := MeasureDatapathAllocs(5000); allocs != 0 {
		t.Fatalf("steady-state datapath allocates %.2f allocs/op, want 0", allocs)
	}
}

func BenchmarkStorePut(b *testing.B)           { StorePut(b) }
func BenchmarkStorePutUnbounded(b *testing.B)  { StorePutUnbounded(b) }
func BenchmarkStoreGet(b *testing.B)           { StoreGet(b) }
func BenchmarkStoreEvictByBytes(b *testing.B)  { StoreEvictByBytes(b) }
func BenchmarkStoreMissingSteady(b *testing.B) { StoreMissingSteady(b) }
func BenchmarkDatapathAllocs(b *testing.B)     { DatapathAllocs(b) }
func BenchmarkRecoveryRTT(b *testing.B)        { RecoveryRTT(b) }
func BenchmarkUDPLoopback(b *testing.B)        { UDPLoopback(b) }
