package perf

import (
	"testing"

	"lbrm/internal/obs"
)

// TestDatapathZeroAlloc is the allocation gate: the steady-state
// data→log→ack pipeline of a secondary logger must not allocate — bare,
// and with a live observability sink attached (per-class tx counters,
// protocol counters, epoch gauge, and a flight-record emission per step
// all firing). Any regression — a timer re-wrap, a map that stopped being
// pooled, an escape-analysis break, a metric that allocates — fails this
// test, not just a benchmark report.
func TestDatapathZeroAlloc(t *testing.T) {
	if allocs := MeasureDatapathAllocs(5000, nil); allocs != 0 {
		t.Fatalf("steady-state datapath allocates %.2f allocs/op, want 0", allocs)
	}
	if allocs := MeasureDatapathAllocs(5000, obs.NewSink()); allocs != 0 {
		t.Fatalf("instrumented datapath allocates %.2f allocs/op, want 0", allocs)
	}
}

func BenchmarkStorePut(b *testing.B)           { StorePut(b) }
func BenchmarkStorePutUnbounded(b *testing.B)  { StorePutUnbounded(b) }
func BenchmarkStoreGet(b *testing.B)           { StoreGet(b) }
func BenchmarkStoreEvictByBytes(b *testing.B)  { StoreEvictByBytes(b) }
func BenchmarkStoreMissingSteady(b *testing.B) { StoreMissingSteady(b) }
func BenchmarkDatapathAllocs(b *testing.B)     { DatapathAllocs(b) }
func BenchmarkDatapathAllocsObs(b *testing.B)  { DatapathAllocsObs(b) }
func BenchmarkObsCounterInc(b *testing.B)      { ObsCounterInc(b) }
func BenchmarkObsClassRecord(b *testing.B)     { ObsClassRecord(b) }
func BenchmarkObsTraceEmit(b *testing.B)       { ObsTraceEmit(b) }
func BenchmarkObsFlightEmit(b *testing.B)      { ObsFlightEmit(b) }
func BenchmarkRecoveryRTT(b *testing.B)        { RecoveryRTT(b) }
func BenchmarkUDPLoopback(b *testing.B)        { UDPLoopback(b) }
