package perf

import (
	"fmt"
	"testing"
	"time"

	"lbrm/internal/netsim"
	"lbrm/internal/transport"
	"lbrm/internal/vtime"
	"lbrm/internal/wire"
)

// Simulation-engine benchmark: the ROADMAP's 10k-site broadcast scenario
// run through the discrete-event engine itself, with trivial protocol
// handlers so the measurement isolates the simulator (timer wheel, bulk
// delivery, windowed parallel islands) from LBRM protocol work.
//
// The headline metric is logical events per second of wall-clock time.
// Logical events (netsim.Network.LogicalEvents) count the workload — one
// per datagram delivery plus every non-delivery clock event — and are
// engine-independent: the heap and wheel schedulers, bulk and per-member
// delivery, sequential and parallel execution all execute the identical
// trace and report the identical count. The events/sec ratio between two
// engines is therefore a pure wall-clock speedup, uninflated by one
// engine simply scheduling more events than the other.

// SimScenarioOpts sizes one engine benchmark scenario.
type SimScenarioOpts struct {
	// Islands is the receiver island count; island 0 is the source's.
	Islands int
	// Sites is the total receiver site count, spread round-robin.
	Sites int
	// ReceiversPerSite is the population behind each site router.
	ReceiversPerSite int
	// Duration is the simulated time driven; Interval the multicast gap.
	Duration, Interval time.Duration
	// Trace enables the FNV trace hash. The headline measurement runs
	// without it (tracing is a diagnostic, not part of the engine);
	// TestSimEngineTraceEquality pins hash equality separately.
	Trace bool
}

// Scenario10k is the ROADMAP north-star scale: 10,000 receiver sites.
func Scenario10k() SimScenarioOpts {
	return SimScenarioOpts{
		Islands:          8,
		Sites:            10_000,
		ReceiversPerSite: 1,
		Duration:         2 * time.Second,
		Interval:         20 * time.Millisecond,
	}
}

// scenario1k is the cheap configuration for the registry benchmarks and
// the perf gate's live re-measurement.
func scenario1k() SimScenarioOpts {
	return SimScenarioOpts{
		Islands:          4,
		Sites:            1_000,
		ReceiversPerSite: 1,
		Duration:         2 * time.Second,
		Interval:         20 * time.Millisecond,
	}
}

// SimEngineRun is one measured scenario execution.
type SimEngineRun struct {
	// EventsPerSec is the headline: logical events / wall seconds.
	EventsPerSec float64
	// Events and Deliveries describe the executed workload; both are
	// identical across engines for the same opts.
	Events     uint64
	Deliveries uint64
	// TraceHash fingerprints the full packet trace; identical across
	// engines for the same opts.
	TraceHash uint64
	// Wall is the host time the run took.
	Wall time.Duration
}

const simBenchGroup = wire.GroupID(1)

// simTicker multicasts one fixed payload per interval until stopped.
type simTicker struct {
	interval time.Duration
	until    time.Time
	payload  []byte
}

func (s *simTicker) Start(env transport.Env) {
	var tick func()
	tick = func() {
		if env.Now().After(s.until) {
			return
		}
		if err := env.Multicast(simBenchGroup, transport.TTLGlobal, s.payload); err != nil {
			panic(err)
		}
		env.AfterFunc(s.interval, tick)
	}
	env.AfterFunc(s.interval, tick)
}

func (s *simTicker) Recv(transport.Addr, []byte) {}

// simCounter joins the group and counts deliveries.
type simCounter struct{ got uint64 }

func (c *simCounter) Start(env transport.Env) {
	if err := env.Join(simBenchGroup); err != nil {
		panic(err)
	}
}

func (c *simCounter) Recv(transport.Addr, []byte) { c.got++ }

// buildSimFleet assembles the broadcast fleet on a fresh cluster.
func buildSimFleet(opts SimScenarioOpts, epoch time.Time) (*netsim.Cluster, error) {
	perIsland := (opts.Sites + opts.Islands - 1) / opts.Islands
	stride := perIsland*opts.ReceiversPerSite + 4
	c := netsim.NewCluster(1, stride)
	cross := netsim.LinkConfig{Delay: 8 * time.Millisecond, TTLRequired: netsim.RegionBoundaryTTL}
	for k := 0; k <= opts.Islands; k++ {
		if _, err := c.AddIsland(cross, cross); err != nil {
			return nil, err
		}
	}
	src := c.Island(0).Net.NewSite(netsim.SiteParams{Name: "source-site"})
	src.NewHost("source", &simTicker{
		interval: opts.Interval,
		until:    epoch.Add(opts.Duration - opts.Interval),
		payload:  make([]byte, 64),
	})
	for s := 0; s < opts.Sites; s++ {
		isl := c.Island(1 + s%opts.Islands)
		site := isl.Net.NewSite(netsim.SiteParams{Name: fmt.Sprintf("site%d", s)})
		for r := 0; r < opts.ReceiversPerSite; r++ {
			site.NewHost(fmt.Sprintf("site%d/rcv%d", s, r), &simCounter{})
		}
	}
	return c, nil
}

// MeasureSimEngine runs the scenario once and measures events/sec.
// baseline selects the pre-scale-out engine — container/heap scheduler,
// per-member delivery, sequential islands; otherwise the scenario runs on
// the timer wheel with bulk delivery and parallel islands.
func MeasureSimEngine(opts SimScenarioOpts, baseline bool) (SimEngineRun, error) {
	if baseline {
		vtime.UseHeapScheduler(true)
		defer vtime.UseHeapScheduler(false)
	}
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	c, err := buildSimFleet(opts, epoch)
	if err != nil {
		return SimEngineRun{}, err
	}
	c.EnableTraceHash(opts.Trace)
	c.SetBulkDelivery(!baseline)
	c.SetParallel(!baseline)
	if err := c.Start(); err != nil {
		return SimEngineRun{}, err
	}
	start := time.Now()
	if err := c.Run(opts.Duration); err != nil {
		return SimEngineRun{}, err
	}
	wall := time.Since(start)
	run := SimEngineRun{
		Events:     c.Events(),
		Deliveries: c.Deliveries(),
		TraceHash:  c.TraceHash(),
		Wall:       wall,
	}
	run.EventsPerSec = float64(run.Events) / wall.Seconds()
	return run, nil
}

// SimEngineQuick is the perf gate's live sim-engine health check.
type SimEngineQuick struct {
	// Speedup is scale-out vs baseline events/sec on the 1k-site scenario,
	// measured without tracing (as the headline is).
	Speedup float64
	// TraceHashMatch reports whether a trace-enabled pair of runs executed
	// the byte-identical packet trace.
	TraceHashMatch bool
}

// MeasureSimEngineQuick runs the cheap 1k-site scenario four times — an
// untraced pair for the speedup, a traced pair for the equality bit — so
// the perf gate can catch an engine regression without the 10k fleet.
func MeasureSimEngineQuick() (SimEngineQuick, error) {
	var q SimEngineQuick
	opts := scenario1k()
	scaled, err := MeasureSimEngine(opts, false)
	if err != nil {
		return q, err
	}
	base, err := MeasureSimEngine(opts, true)
	if err != nil {
		return q, err
	}
	q.Speedup = scaled.EventsPerSec / base.EventsPerSec
	opts.Trace = true
	tScaled, err := MeasureSimEngine(opts, false)
	if err != nil {
		return q, err
	}
	tBase, err := MeasureSimEngine(opts, true)
	if err != nil {
		return q, err
	}
	q.TraceHashMatch = tScaled.TraceHash == tBase.TraceHash &&
		tScaled.Events == tBase.Events && tScaled.Deliveries > 0
	return q, nil
}

// simEngineBench adapts one engine configuration to the bench registry.
func simEngineBench(baseline bool) func(*testing.B) {
	return func(b *testing.B) {
		opts := scenario1k()
		b.ReportAllocs()
		b.ResetTimer()
		var events uint64
		for i := 0; i < b.N; i++ {
			run, err := MeasureSimEngine(opts, baseline)
			if err != nil {
				b.Fatal(err)
			}
			events += run.Events
		}
		b.StopTimer()
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	}
}

// SimEngine1k is the scale-out engine (wheel + bulk + parallel islands)
// on the 1k-site broadcast scenario.
var SimEngine1k = simEngineBench(false)

// SimEngine1kBaseline is the pre-scale-out engine (heap scheduler,
// per-member delivery, sequential) on the same scenario.
var SimEngine1kBaseline = simEngineBench(true)
