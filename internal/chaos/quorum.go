package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"lbrm/internal/wire"
)

// Quorum schedule classes. When Config.Quorum > 0 the harness runs the
// durability matrix instead of the generic fault roulette: one single
// fault targeting the replication machinery — the acting primary, one
// ring replica, or one ring link — composed with a receiver-site
// partition that forces post-heal recovery pressure onto whatever server
// holds authority afterwards. Invariant 11 (DESIGN.md §12) then demands
// perfection: with a surviving write quorum, no receiver ever skips a
// sequence number, no ranges are abandoned, no backfill hole is declared
// unrecoverable, and no source-acked sequence is lost.
//
// The crash-primary class is the adversarial centerpiece: a sync-class
// blackout on the primary's up-link first starves the replicas of every
// LogSync record and ring token (the primary keeps logging and — in
// quorum mode — keeps parking acks), then the primary crashes at the
// blackout's edge. Quorum mode survives because the sender still retains
// everything past the parked watermark and re-supplies it to the promoted
// replica; with quorum reverted (quorumRevert) the same schedule releases
// the sender's buffer against a primary that is the packets' only copy,
// and the loss becomes visible as receiver skips, abandoned ranges and
// backfill skips — the proof that the mechanism, not luck, closes the
// window.
const (
	quorumFaultCrashPrimary = "crash-primary"
	quorumFaultCrashReplica = "crash-replica"
	quorumFaultRingLink     = "ring-partition"
	quorumFaultNone         = "none"
)

// classDrop is a packet-aware loss model dropping one wire traffic class
// with probability p (p ≥ 1 is a class gate). Undecodable runts pass.
type classDrop struct {
	cls wire.TrafficClass
	p   float64
}

// Drop implements netsim.LossModel (class unknown without bytes: pass).
func (classDrop) Drop(time.Time, *rand.Rand) bool { return false }

// DropPacket implements netsim.PacketAwareLoss.
func (c classDrop) DropPacket(_ time.Time, rng *rand.Rand, data []byte) bool {
	if len(data) <= 3 || wire.ClassOf(wire.Type(data[3])) != c.cls {
		return false
	}
	return c.p >= 1 || rng.Float64() < c.p
}

// quorumSchedule derives the quorum durability schedule from the seed:
// one receiver-site partition (recovery pressure) plus the configured —
// or seed-drawn — single replication fault. QuorumFault "none" schedules
// nothing (used by the per-packet replication-cost accounting, which
// wants a fault-free baseline).
func quorumSchedule(cfg Config, rng *rand.Rand) []Fault {
	kind := cfg.QuorumFault
	if kind == "" {
		kind = [...]string{quorumFaultCrashPrimary, quorumFaultCrashReplica,
			quorumFaultRingLink}[rng.Intn(3)]
	}
	if kind == quorumFaultNone {
		return nil
	}
	d := cfg.Duration
	out := []Fault{{
		Kind: "partition", At: d * 32 / 100, Dur: d * 13 / 100,
		Site: rng.Intn(cfg.Sites), Idx: -1,
	}}
	switch kind {
	case quorumFaultCrashPrimary:
		// Blackout ends just after the crash so the heal never races the
		// crash at the same virtual instant; healing a dead node's link
		// overlay is harmless.
		out = append(out,
			Fault{Kind: "sync-blackout", At: d * 28 / 100, Dur: d * 13 / 100,
				Site: -1, Idx: -1},
			Fault{Kind: "crash-primary", At: d * 2 / 5,
				Dur: 1500 * time.Millisecond, Site: -1, Idx: -1})
	case quorumFaultCrashReplica:
		out = append(out, Fault{Kind: "crash-replica", At: d * 35 / 100,
			Dur: 1500 * time.Millisecond, Site: -1, Idx: rng.Intn(cfg.Replicas)})
	case quorumFaultRingLink:
		out = append(out, Fault{Kind: "ring-partition", At: d * 33 / 100,
			Dur: 2 * time.Second, Site: -1, Idx: rng.Intn(cfg.Replicas)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// checkQuorumInvariants enforces invariant 11 after a quorum-schedule run
// (it also runs — and is meant to trip — under the quorumRevert knob,
// where the same schedule executes with replication disabled):
//
//   - quorum-no-skip: every receiver delivered every sequence number the
//     sender ever sent, end to end (the quorum schedule never crashes
//     receivers, so the harness's OnData delivery ledger is complete);
//   - quorum-abandoned: no receiver ever abandoned a recovery range;
//   - quorum-skip: no promoted replica ever declared a backfill hole
//     unrecoverable;
//   - quorum-acked-loss: the highest source-acked sequence the wire tap
//     saw leave any primary is retained contiguously by the server
//     holding authority at the end of the run.
func (h *harness) checkQuorumInvariants() {
	if h.cfg.Quorum <= 0 {
		return
	}
	for s := range h.delivered {
		for j := range h.delivered[s] {
			var missing []uint64
			for seq := uint64(1); seq <= h.res.LastSeq && len(missing) < 8; seq++ {
				if !h.delivered[s][j][seq] {
					missing = append(missing, seq)
				}
			}
			if len(missing) > 0 {
				h.violate("quorum-no-skip", fmt.Sprintf(
					"site%d/rcv%d never delivered seqs %v (lastSeq %d)",
					s+1, j, missing, h.res.LastSeq))
			}
		}
	}
	var abandoned uint64
	for s := range h.receivers {
		for _, r := range h.receivers[s] {
			abandoned += r.Stats().RangesAbandoned
		}
	}
	if abandoned > 0 {
		h.violate("quorum-abandoned", fmt.Sprintf(
			"%d recovery ranges abandoned across receivers", abandoned))
	}
	var skipped uint64
	for _, p := range h.primaries {
		skipped += p.Stats().BackfillSkipped
	}
	if skipped > 0 {
		h.violate("quorum-skip", fmt.Sprintf(
			"%d sequence numbers declared unrecoverable by promoted replicas", skipped))
	}
	for i, node := range h.primaryNodes {
		if node.Crashed() || h.primaries[i].IsReplica() {
			continue
		}
		if got := h.primaries[i].Contiguous(h.logKey); got < h.maxSourceAck {
			h.violate("quorum-acked-loss", fmt.Sprintf(
				"acting primary holds %d contiguous but %d was source-acked on the wire",
				got, h.maxSourceAck))
		}
	}
}
