package chaos

import (
	"fmt"
	"testing"
	"time"

	"lbrm/internal/obs/health"
)

// TestChaosHealthDetectionMatrix is E27's harness: ≥20 seeded runs across
// the three injected detection targets plus clean baselines. Detection
// itself is enforced inside the harness (the health-detection and
// health-false-positive invariants), so the matrix asserts a clean
// verdict and tables the observed detection latencies against the
// engine's documented bound.
func TestChaosHealthDetectionMatrix(t *testing.T) {
	type scenario struct {
		name string
		cfg  Config
		// wantRule is the rule that must appear in HealthDetection ("" =
		// no alert may appear at all).
		wantRule string
	}
	var cases []scenario
	for seed := int64(1); seed <= 7; seed++ {
		cases = append(cases, scenario{
			name:     fmt.Sprintf("crying-baby/seed%d", seed),
			cfg:      Config{Seed: seed, HealthFault: "crying-baby"},
			wantRule: "crying-baby",
		})
	}
	for seed := int64(11); seed <= 17; seed++ {
		cases = append(cases, scenario{
			name: fmt.Sprintf("regional-loss/seed%d", seed),
			cfg:  Config{Seed: seed, HealthFault: "regional-loss"},
			// The harness invariant accepts a site alert or a fleet NACK
			// storm; crying-baby is the per-site detector that fires on a
			// whole afflicted site too (the fleet median stays clean).
			wantRule: "crying-baby",
		})
	}
	for seed := int64(21); seed <= 26; seed++ {
		cases = append(cases, scenario{
			name:     fmt.Sprintf("ring-stall/seed%d", seed),
			cfg:      Config{Seed: seed, Quorum: 2, QuorumFault: "ring-partition"},
			wantRule: "ring-stall",
		})
	}
	for seed := int64(31); seed <= 33; seed++ {
		cases = append(cases, scenario{
			name:     fmt.Sprintf("clean/seed%d", seed),
			cfg:      Config{Seed: seed, HealthFault: "none"},
			wantRule: "",
		})
	}
	if len(cases) < 20 {
		t.Fatalf("matrix has %d runs, want ≥20", len(cases))
	}

	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Errorf("violation: %v", v)
			}
			if res.HealthEvals == 0 {
				t.Fatal("health engine never evaluated")
			}
			if c.wantRule == "" {
				if len(res.HealthAlerts) != 0 {
					t.Fatalf("clean run raised %d alerts: %+v", len(res.HealthAlerts), res.HealthAlerts)
				}
				return
			}
			at, ok := res.HealthDetection[c.wantRule]
			if !ok {
				t.Fatalf("rule %q never raised; detections=%v alerts=%+v",
					c.wantRule, res.HealthDetection, res.HealthAlerts)
			}
			// Latency vs the fault start (the harness invariant already
			// bounded it; this logs the margin for E27).
			faultAt := res.Schedule[len(res.Schedule)-1].At
			for _, f := range res.Schedule {
				if f.Kind == "crying-baby" || f.Kind == "regional-loss" || f.Kind == "ring-partition" {
					faultAt = f.At
				}
			}
			t.Logf("detected %s %v after the fault (bound %v)", c.wantRule, at-faultAt, res.HealthBound)
		})
	}
}

// TestHealthFaultValidation pins the config surface: bad scenario names
// and invalid combinations are construction errors, not silent no-ops.
func TestHealthFaultValidation(t *testing.T) {
	if _, err := Run(Config{Seed: 1, HealthFault: "nonsense"}); err == nil {
		t.Fatal("unknown HealthFault accepted")
	}
	if _, err := Run(Config{Seed: 1, HealthFault: "crying-baby", Quorum: 2}); err == nil {
		t.Fatal("HealthFault + Quorum accepted")
	}
	if _, err := Run(Config{Seed: 1, HealthFault: "regional-loss", Regions: 2}); err == nil {
		t.Fatal("HealthFault + Regions accepted")
	}
}

// TestHealthAlertsClearAfterHeal checks the lifecycle end: the injected
// baby's alerts not only raise but clear once the fault heals and the
// rate window drains, and the health metrics reach the merged fleet view
// and the flight log.
func TestHealthAlertsClearAfterHeal(t *testing.T) {
	res, err := Run(Config{Seed: 3, HealthFault: "crying-baby"})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %v", v)
	}
	var sawCleared bool
	for _, a := range res.HealthAlerts {
		if a.Rule == health.RuleCryingBaby && a.ClearedAt > a.RaisedAt {
			sawCleared = true
			if life := time.Duration(a.ClearedAt - a.RaisedAt); life < time.Second {
				t.Errorf("alert lifetime %v implausibly short", life)
			}
		}
	}
	if !sawCleared {
		t.Fatalf("no cleared crying-baby alert in %+v", res.HealthAlerts)
	}
	if res.Metrics.Counters["health.alerts.raised"] == 0 {
		t.Error("health.alerts.raised missing from merged metrics")
	}
	if res.Metrics.Counters["health.evals"] != res.HealthEvals {
		t.Errorf("merged health.evals = %d, engine says %d",
			res.Metrics.Counters["health.evals"], res.HealthEvals)
	}
	final := res.Flight[len(res.Flight)-1].Metrics
	if _, ok := final.Gauges["health.alerts.active"]; !ok {
		t.Error("final flight sample missing health.alerts.active gauge")
	}
}
