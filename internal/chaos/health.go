package chaos

// The health side of the harness (DESIGN.md §15): every run arms the
// health/SLO engine over per-site series fed from the same vtime tick as
// the flight sampler, so detection latency is measured against the fault
// schedule under the exact conditions the invariants replay. Dedicated
// HealthFault schedules inject the three canonical detection targets —
// the §6 crying-baby receiver, a sustained regional loss episode, and
// (via the quorum schedule) a replication ring stall.

import (
	"fmt"
	"math/rand"
	"time"

	"lbrm/internal/obs"
	"lbrm/internal/obs/health"
	"lbrm/internal/obs/series"
)

const (
	healthFaultCryingBaby   = "crying-baby"
	healthFaultRegionalLoss = "regional-loss"
	healthFaultNone         = "none"
)

// healthSeriesCap bounds each entity's sample ring; window queries only
// ever look back Config.Window, so wrap-around past it is fine.
const healthSeriesCap = 64

// healthConfig is the engine tuning for chaos runs: Defaults with the
// fleet storm threshold rescaled to the simulator's send rate (the
// daemon default of 60 NACKs/s assumes real DIS traffic, two decades
// above the harness's ~7 packets/s).
func healthConfig() health.Config {
	cfg := health.Defaults()
	cfg.EvalEvery = flightSampleEvery
	cfg.NackStormRate = 30
	return cfg
}

// healthSchedule replaces the random fault plan with one long-lived
// detection target whose window comfortably outlasts the engine's
// detection bound.
func healthSchedule(cfg Config, rng *rand.Rand) []Fault {
	d := cfg.Duration
	switch cfg.HealthFault {
	case healthFaultCryingBaby:
		return []Fault{{Kind: "crying-baby", At: d / 4, Dur: d * 11 / 20,
			Site: rng.Intn(cfg.Sites), Idx: rng.Intn(cfg.ReceiversPerSite)}}
	case healthFaultRegionalLoss:
		return []Fault{{Kind: "regional-loss", At: d / 4, Dur: d * 11 / 20,
			Site: rng.Intn(cfg.Sites), Idx: -1}}
	}
	return nil // healthFaultNone: the zero-alert baseline
}

// startHealth builds the engine and its per-entity samplers: one entity
// per site (secondary + receivers merged — the site's aggregate repair
// demand), one "servers" entity for the primary tier.
func (h *harness) startHealth() {
	h.healthSink = obs.NewSink()
	h.hEngine = health.NewEngine(healthConfig(), h.healthSink)
	for s := range h.siteSecSink {
		smp := series.NewSampler(nil, healthSeriesCap)
		h.siteSampler = append(h.siteSampler, smp)
		h.hEngine.AddEntity(fmt.Sprintf("site%d", s+1), false, smp)
	}
	h.srvSampler = series.NewSampler(nil, healthSeriesCap)
	h.hEngine.AddEntity("servers", true, h.srvSampler)
}

// sampleHealth ingests one vtime snapshot per entity and evaluates the
// rules; called from the flight sampler's tick so the health gauges in
// the flight log are at most one cadence stale.
func (h *harness) sampleHealth(nowNs int64) {
	for s, smp := range h.siteSampler {
		snaps := make([]obs.Snapshot, 0, 1+len(h.siteRcvSink[s]))
		snaps = append(snaps, h.siteSecSink[s].Registry().Snapshot())
		for _, sink := range h.siteRcvSink[s] {
			snaps = append(snaps, sink.Registry().Snapshot())
		}
		smp.SampleSnapshot(nowNs, obs.Merge(snaps...))
	}
	snaps := make([]obs.Snapshot, len(h.srvSinks))
	for i, sink := range h.srvSinks {
		snaps[i] = sink.Registry().Snapshot()
	}
	h.srvSampler.SampleSnapshot(nowNs, obs.Merge(snaps...))
	h.hEngine.Eval(nowNs)
}

// finishHealth snapshots the engine's verdict into the Result: full
// alert history (cleared then still-active, in raise order within each
// group) and the first-raise offset per rule.
func (h *harness) finishHealth() {
	h.res.HealthBound = h.hEngine.Config().DetectionBound()
	h.res.HealthEvals = h.hEngine.Evals()
	h.res.HealthAlerts = append(h.hEngine.History(), h.hEngine.Active()...)
	h.res.HealthDetection = make(map[string]time.Duration)
	startNs := h.start.UnixNano()
	for _, a := range h.res.HealthAlerts {
		at := time.Duration(a.RaisedAt - startNs)
		if cur, ok := h.res.HealthDetection[a.RuleName]; !ok || at < cur {
			h.res.HealthDetection[a.RuleName] = at
		}
	}
}

// checkHealthInvariants enforces the observability contract:
//
//   - health-false-positive: a run with an empty fault schedule must
//     never raise any alert;
//   - health-detection: every injected detection target whose symptom
//     actually materialized must be flagged within the engine's
//     documented DetectionBound of the fault start — crying-baby as a
//     crying-baby alert on the right site, regional-loss as any alert on
//     the afflicted site (or a fleet NACK storm), and a quorum
//     ring-partition as a ring-stall alert on the servers entity.
func (h *harness) checkHealthInvariants() {
	if len(h.res.Schedule) == 0 {
		if n := len(h.res.HealthAlerts); n > 0 {
			h.violate("health-false-positive", fmt.Sprintf(
				"%d alerts on a faultless run (first: %+v)", n, h.res.HealthAlerts[0]))
		}
		return
	}
	for _, f := range h.res.Schedule {
		switch f.Kind {
		case "crying-baby":
			site := fmt.Sprintf("site%d", f.Site+1)
			h.requireDetection(f, "crying-baby alert on "+site, func(a health.Alert) bool {
				return a.Rule == health.RuleCryingBaby && a.Entity == site
			})
		case "regional-loss":
			site := fmt.Sprintf("site%d", f.Site+1)
			h.requireDetection(f, "site alert on "+site+" or fleet NACK storm", func(a health.Alert) bool {
				return a.Entity == site || a.Rule == health.RuleNackStorm
			})
		case "ring-partition":
			var stalls uint64
			for _, sink := range h.srvSinks {
				stalls += sink.Counter("primary.quorum.ring_stalls").Value()
			}
			if stalls == 0 {
				break // the fault produced no symptom; nothing to detect
			}
			h.requireDetection(f, "ring-stall alert", func(a health.Alert) bool {
				return a.Rule == health.RuleRingStall
			})
		}
	}
}

// requireDetection checks that some matching alert raised within the
// detection bound of the fault start.
func (h *harness) requireDetection(f Fault, what string, match func(health.Alert) bool) {
	bound := h.res.HealthBound
	startNs := h.start.UnixNano()
	best := time.Duration(-1)
	for _, a := range h.res.HealthAlerts {
		if !match(a) {
			continue
		}
		lat := time.Duration(a.RaisedAt-startNs) - f.At
		if best < 0 || lat < best {
			best = lat
		}
	}
	switch {
	case best < 0:
		h.violate("health-detection", fmt.Sprintf("%s never raised (fault %v)", what, f))
	case best > bound:
		h.violate("health-detection", fmt.Sprintf(
			"%s raised %v after the fault, beyond the documented bound %v (fault %v)",
			what, best, bound, f))
	}
}
