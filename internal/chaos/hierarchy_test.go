package chaos

import (
	"fmt"
	"testing"
)

// hierFaultKinds is the hierarchy degradation matrix's fault-class axis.
var hierFaultKinds = []string{
	hierFaultRegionalCrash, hierFaultTierPartition, hierFaultCascade,
}

func hierCfg(seed int64, kind string) Config {
	return Config{Seed: seed, Regions: 2, Sites: 4, ReceiversPerSite: 2,
		HierarchyFault: kind}
}

// TestChaosHierarchyMatrix is the tree-degradation matrix: 10 seeds × 3
// fault classes against the regional tier (crash mid-recovery, both-ways
// partition, cascading two-tier failure), each composed with a site
// down-outage that keeps recovery demand on the degraded tier. Every run
// must hold every invariant — including tier-skip (escalation never skips
// a live tier), rehome/rehome-converge (children of a dead regional end
// where the re-parent protocol says) and hierarchy-no-skip (no acked loss
// across re-parenting).
func TestChaosHierarchyMatrix(t *testing.T) {
	for _, kind := range hierFaultKinds {
		for seed := int64(1); seed <= 10; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", kind, seed), func(t *testing.T) {
				res, err := Run(hierCfg(seed, kind))
				if err != nil {
					t.Fatal(err)
				}
				if !res.OK() {
					t.Fatalf("invariants violated:\n%s", res.Report())
				}
				if kind == hierFaultCascade && res.Metrics.Counters["recv.reparents"] == 0 {
					// The reborn regional's announcement must have reached
					// receivers too, not just the site secondaries.
					t.Fatalf("cascade run saw no receiver re-parent adoptions:\n%s", res.Report())
				}
			})
		}
	}
}

// TestChaosHierarchyDeterministic pins seed-reproducibility for the
// hierarchy schedule: same seed, same fault class, same packet trace.
func TestChaosHierarchyDeterministic(t *testing.T) {
	for _, kind := range hierFaultKinds {
		a, err := Run(hierCfg(5, kind))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(hierCfg(5, kind))
		if err != nil {
			t.Fatal(err)
		}
		if a.TraceHash != b.TraceHash {
			t.Fatalf("%s: same seed, different traces: %016x vs %016x",
				kind, a.TraceHash, b.TraceHash)
		}
	}
}

// TestChaosHierarchyRevertTrips is the proof-by-revert: the cascade
// schedule every matrix run survives — site secondary and regional dead
// together — must trip the tier-skip invariant when the receivers' logger
// chains are stripped back to the flat two-hop design. Flat receivers
// treat the primary as tier 1, so their NACKs arrive under-stamped: the
// wire itself shows the escalation path skipping the regional tier.
func TestChaosHierarchyRevertTrips(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		cfg := hierCfg(seed, hierFaultCascade)
		treed, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !treed.OK() {
			t.Fatalf("seed %d with the full tree: %s", seed, treed.Report())
		}
		cfg.flatRevert = true
		flat, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tripped := false
		for _, v := range flat.Violations {
			if v.Name == "tier-skip" {
				tripped = true
			}
		}
		if !tripped {
			t.Fatalf("seed %d flat-reverted run missing tier-skip violation; got:\n%s",
				seed, flat.Report())
		}
	}
}
