// Package chaos is a deterministic fault-injection harness for the full
// LBRM topology. A seeded orchestrator drives the paper's deployment —
// sender, primary logger, replicas, per-site secondaries, receivers — under
// the simulator's virtual clock while injecting a reproducible schedule of
// faults: process crashes with total state loss and later restart, site
// partitions (tail-circuit gates), and flaky-link windows (random loss +
// duplication + reordering). After the last fault heals it checks the
// protocol's end-to-end recovery invariants:
//
//   - every live receiver converges to the sender's last sequence number
//     within a bounded horizon (freshness over completeness: abandoned
//     ranges advance the watermark too);
//   - the sender's retention buffer drains to zero;
//   - exactly one acting (non-replica) primary remains among live loggers;
//   - acknowledgement sequence numbers (source acks and replica sync acks)
//     are monotone per node incarnation;
//   - after convergence the network goes quiet — no NACK traffic at all in
//     a trailing window (retry storms and leaked retry loops show up here);
//   - if the primary crashed, failover completed within the analytic bound;
//   - primary-epoch monotonicity per observer: no node's authority-bearing
//     traffic (source acks, log syncs, sync acks, promotes, redirects,
//     heartbeats) ever regresses to a lower primary epoch within one
//     incarnation;
//   - at most one un-fenced acting primary at every virtual instant: a
//     second acting primary may exist only while a fault window isolates it
//     (it cannot have heard the new epoch) or within a short grace after
//     the heal;
//   - NACK budget (§2.2.2): every NACK traversal attempted on a receiver
//     site's tail circuit is accounted for by that site's secondary and
//     receiver NacksToPrimary counters — recovery load on the backbone is
//     exactly the per-site aggregate, nothing leaks around it;
//   - flight-recorder completeness (DESIGN.md §10): every packet the
//     harness observed a receiver recover has a complete, causally ordered
//     recovery chain in the flight rings (detect → NACK → serve → deliver),
//     and the chain's delivery and NACK timestamps reconcile with the wire
//     tap's independent measurements within one host-link delay;
//   - after everything stops, the event queue drains — a timer that
//     re-arms itself past shutdown is a leak;
//   - quorum durability (invariant 11, quorum schedules only): under any
//     single replication fault with a surviving write quorum, zero
//     receiver skips, zero abandoned recovery ranges, zero backfill
//     skips, and no source-acked sequence lost (DESIGN.md §12).
//
// Beyond the original crash/partition/flaky-link faults, the schedule can
// include a source-segment partition (the acting primary isolated deaf,
// mute, or both while sender and replicas stay mutually reachable —
// §2.2.3's split-brain scenario), join-window faults (everything fired in
// the first tenth of the run, while streams are still establishing state),
// and overlapping fault windows on one site's tail circuit.
//
// Every run is reproducible from its seed alone: the same seed yields the
// same fault schedule, the same packet trace (TraceHash), and the same
// verdict. A failing seed IS the bug report.
package chaos

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"time"

	"lbrm"
	"lbrm/internal/netsim"
	"lbrm/internal/obs"
	"lbrm/internal/obs/health"
	"lbrm/internal/obs/series"
	"lbrm/internal/wire"
)

// Config parameterizes one chaos run. Zero values get defaults.
type Config struct {
	// Seed determines the topology rng AND the fault schedule.
	Seed int64
	// Topology (defaults: 3 sites × 3 receivers, 2 replicas).
	Sites, ReceiversPerSite, Replicas int
	// Duration is the traffic+fault phase length (default 20s virtual).
	Duration time.Duration
	// SendEvery is the data packet interval (default 150ms).
	SendEvery time.Duration
	// Faults is how many faults to schedule (default 6).
	Faults int
	// CrashPrimary forces one primary crash (plus restart as a cold
	// replica) into the schedule. Requires Replicas ≥ 1.
	CrashPrimary bool
	// SourcePartition forces a source-segment partition into the schedule:
	// the acting primary's host is isolated — deaf, mute, or both, chosen
	// by the seed — while the sender and the replicas remain mutually
	// reachable, then healed. The stale primary keeps its state and its
	// conviction of authority; epoch fencing must neutralize it (§2.2.3).
	// Mutually exclusive with CrashPrimary; requires Replicas ≥ 1.
	SourcePartition bool
	// JoinWindow draws every random fault's start from the join window
	// (t < Duration/10), when receivers and loggers are still establishing
	// first contact — the protocol's most fragile phase.
	JoinWindow bool
	// Overlapping schedules a flaky-link window and a partition window
	// that overlap on the same site's tail circuit, exercising stacked
	// fault application and out-of-order heals.
	Overlapping bool
	// Quorum enables quorum replication on the logging servers (write
	// quorum of replicas that must apply a packet before the source ack
	// mints) and switches the run to the quorum durability schedule: one
	// single replication fault plus a receiver-site partition, checked
	// against invariant 11 — zero receiver skips, zero abandoned ranges,
	// zero backfill skips, no acked-sequence loss (DESIGN.md §12).
	// Defaults Replicas to 3 so a promoted replica still reaches a write
	// quorum of 2 from its surviving peers after any single fault.
	Quorum int
	// QuorumFault pins the quorum schedule's replication fault:
	// "crash-primary", "crash-replica", "ring-partition", or "none" (no
	// faults at all — the replication-cost accounting baseline). Empty
	// draws one of the three fault classes from the seed.
	QuorumFault string
	// quorumRevert runs the quorum schedule and invariant checks with
	// quorum replication itself disabled (test-only): used to demonstrate
	// that invariant 11 actually trips when the mechanism is reverted.
	quorumRevert bool
	// Regions, when positive, switches the run to the hierarchy schedule
	// (DESIGN.md §13): sites sit round-robin under Regions regional
	// loggers forming a three-tier recovery tree, and the fault plan
	// draws one HierarchyFault class targeting the regional tier. The
	// hierarchy invariants then apply: escalation never skips a live
	// tier (every NACK reaching the primary is stamped with the
	// primary's tier), re-homed children converge back to a live parent,
	// and no acknowledged data is lost across re-parenting. Mutually
	// exclusive with Quorum, CrashPrimary and SourcePartition.
	Regions int
	// HierarchyFault pins the hierarchy schedule's fault class:
	// "regional-crash" (the regional dies mid-recovery and its children
	// re-home to the sibling region, then re-adopt the restarted parent),
	// "tier-partition" (the regional is isolated, not killed: children
	// must park on the live sibling, never the primary), or "cascade"
	// (site secondary AND regional die together: receivers must walk
	// both dead tiers to the primary without skipping). Empty draws one
	// from the seed.
	HierarchyFault string
	// HealthFault replaces the random schedule with one long-lived
	// health-detection target (DESIGN.md §15): "crying-baby" — one
	// seed-chosen receiver's host down-link turns lossy for over half the
	// run, the paper's §6 crying-baby receiver — "regional-loss" — one
	// site's shared tail-down circuit turns lossy, a sustained regional
	// loss episode the whole site shares — or "none" — an empty schedule,
	// the zero-alert baseline. The health engine itself is always armed;
	// this knob only selects what it must catch. Mutually exclusive with
	// Quorum, Regions, CrashPrimary and SourcePartition (the quorum
	// "ring-partition" fault is already the ring-stall detection target).
	HealthFault string
	// flatRevert runs the hierarchy schedule with the receivers'
	// escalation chains reverted to the flat design (test-only): their
	// primary-bound NACKs then stamp tier 1 instead of the tree depth,
	// demonstrating that the tier-skip invariant actually trips when the
	// mechanism is reverted.
	flatRevert bool
	// disableFencing runs every logging server with epoch fencing off
	// (test-only): used to demonstrate that the un-fenced-primary
	// invariant actually trips when the mechanism is reverted.
	disableFencing bool
	// DisableCrashes / DisablePartitions / DisableLinkChaos remove a fault
	// class from the random schedule.
	DisableCrashes    bool
	DisablePartitions bool
	DisableLinkChaos  bool
	// ConvergeWithin bounds the post-heal recovery horizon (default 30s).
	ConvergeWithin time.Duration
	// QuiesceWindow is the trailing silence check (default 5s).
	QuiesceWindow time.Duration
	// FailoverTimeout / FailoverWait season the sender (defaults 400ms /
	// 100ms); the failover-latency invariant is derived from them.
	FailoverTimeout time.Duration
	FailoverWait    time.Duration
}

func (c Config) withDefaults() Config {
	if c.Sites == 0 {
		c.Sites = 3
	}
	if c.ReceiversPerSite == 0 {
		c.ReceiversPerSite = 3
	}
	if c.Quorum > 0 && c.Replicas == 0 {
		// A promoted replica must still reach the write quorum from its
		// surviving peers after the single fault: three replicas keep a
		// quorum of two satisfiable through any one crash or partition.
		c.Replicas = 3
	}
	if c.Replicas == 0 && c.Regions == 0 {
		// Hierarchy runs carry no warm spares: replica backfill NACKs are
		// untiered primary-to-primary traffic, which the tier-skip tap
		// check must never have to special-case.
		c.Replicas = 2
	}
	if c.Duration == 0 {
		c.Duration = 20 * time.Second
	}
	if c.SendEvery == 0 {
		c.SendEvery = 150 * time.Millisecond
	}
	if c.Faults == 0 {
		c.Faults = 6
	}
	if c.ConvergeWithin == 0 {
		c.ConvergeWithin = 30 * time.Second
	}
	if c.QuiesceWindow == 0 {
		c.QuiesceWindow = 5 * time.Second
	}
	if c.FailoverTimeout == 0 {
		c.FailoverTimeout = 400 * time.Millisecond
	}
	if c.FailoverWait == 0 {
		c.FailoverWait = 100 * time.Millisecond
	}
	return c
}

// Fault is one scheduled fault. At/Dur are offsets from the run start.
type Fault struct {
	At, Dur time.Duration
	// Kind is one of crash-receiver, crash-secondary, crash-replica,
	// crash-primary, partition, flaky-link, partition-source,
	// sync-blackout (drop every sync-class packet leaving the acting
	// primary's host), ring-partition (isolate one replica's host both
	// ways), crash-regional (kill one regional logger, restart it with
	// the next tree epoch), partition-regional (isolate one regional
	// logger's host both ways), down-outage (gate one site's tail-down
	// only: the site misses data while its upward control path stays
	// open).
	Kind string
	// Site and Idx locate the target where applicable (-1 otherwise).
	// For partition-source, Idx encodes the isolation mode: 0 = both
	// directions, 1 = mute (outbound gated), 2 = deaf (inbound gated).
	Site, Idx int
}

func (f Fault) String() string {
	loc := ""
	if f.Kind == "partition-source" {
		loc = " " + [...]string{"both", "mute", "deaf"}[f.Idx]
	} else {
		if f.Site >= 0 {
			loc = fmt.Sprintf(" site%d", f.Site+1)
		}
		if f.Idx >= 0 {
			loc += fmt.Sprintf("/%d", f.Idx)
		}
	}
	return fmt.Sprintf("t=%v +%v %s%s", f.At, f.Dur, f.Kind, loc)
}

// Violation is one failed invariant.
type Violation struct {
	Name   string
	Detail string
}

func (v Violation) String() string { return v.Name + ": " + v.Detail }

// Result is one chaos run's verdict.
type Result struct {
	Seed       int64
	Schedule   []Fault
	Violations []Violation
	// TraceHash fingerprints every observed link traversal; two runs of
	// the same seed must produce identical hashes.
	TraceHash uint64
	// LastSeq is the final data sequence number sent.
	LastSeq uint64
	// Failovers and Promotions from the protocol's own counters.
	Failovers, Promotions uint64
	// FailoverLatency is crash→Promote (zero if the primary never crashed).
	FailoverLatency time.Duration
	// ConvergeTook is heal→convergence (zero if never converged).
	ConvergeTook time.Duration
	// BackfillSkipped counts sequence numbers declared unrecoverable by a
	// promoted replica (data loss — possible when peers were also faulted).
	BackfillSkipped uint64
	// PrimaryEpoch is the sender's final primary epoch (1 = no failover
	// ever happened; each failover mints the next epoch).
	PrimaryEpoch uint32
	// StaleSourceAcks counts source acks the sender fenced as coming from
	// a stale (lower-epoch) primary.
	StaleSourceAcks uint64
	// TailTraffic classifies every attempted tail-circuit traversal
	// (drops included: a NACK that dies in a partition still spent the
	// attempt) by recovery-bandwidth class; TailTrafficFault is the subset
	// that happened inside a fault window.
	TailTraffic, TailTrafficFault map[string]TrafficCounters
	// Metrics is the fleet-wide merge of every handler sink's registry
	// (counters and histograms summed, gauges max-merged) after the run —
	// the same aggregation lbrm-sim's -metrics report uses.
	Metrics obs.Snapshot
	// SenderTrace is the sender sink's trace-ring snapshot: the protocol
	// transitions (DA-set epochs, failover start/done, epoch bumps) the
	// run produced, oldest first.
	SenderTrace []obs.Event
	// Flight is the fleet timeline: one merged metrics snapshot per
	// sampler tick through the whole run, rendered as the JSONL flight
	// log by lbrm-sim's -flight-log.
	Flight []obs.FlightSample
	// FlightChains counts the per-sequence recovery chains stitched from
	// the flight rings across all receivers; FlightComplete is how many of
	// them told the whole recovery story (obs.FlightChain.Complete).
	FlightChains, FlightComplete uint64
	// HealthAlerts is the always-armed health engine's full alert record
	// (cleared alerts first, then those still active at shutdown);
	// HealthDetection maps rule name → earliest raise offset from run
	// start; HealthBound echoes the engine's documented worst-case
	// detection latency; HealthEvals counts rule evaluations.
	HealthAlerts    []health.Alert
	HealthDetection map[string]time.Duration
	HealthBound     time.Duration
	HealthEvals     uint64
	// NodeTx is the wire tap's per-node transmit ledger: attempted host
	// up-link traversals (drops included) per traffic class, keyed by the
	// harness node name ("sender", "primary", "replica0", "site1/rcv0",
	// ...) and indexed by wire.TrafficClass. The replication-cost
	// accounting reads the primary's sync-class row from here.
	NodeTx map[string][]TrafficCounters
}

// TrafficCounters accumulates one traffic class's tail-circuit load.
type TrafficCounters struct {
	Packets, Bytes uint64
}

// trafficClass buckets a packet type for recovery-bandwidth accounting. It
// delegates to the wire-level classification, so the tap and the
// components' per-class transmit metrics can never disagree on bucketing.
func trafficClass(t wire.Type) string { return wire.ClassOf(t).String() }

// OK reports whether every invariant held.
func (r *Result) OK() bool { return len(r.Violations) == 0 }

// Report renders a human-readable run summary.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos seed=%d lastSeq=%d failovers=%d promotions=%d\n",
		r.Seed, r.LastSeq, r.Failovers, r.Promotions)
	for _, f := range r.Schedule {
		fmt.Fprintf(&b, "  fault: %s\n", f)
	}
	if r.FailoverLatency > 0 {
		fmt.Fprintf(&b, "  failover latency: %v\n", r.FailoverLatency)
	}
	if r.ConvergeTook > 0 {
		fmt.Fprintf(&b, "  converged in: %v\n", r.ConvergeTook)
	}
	if r.BackfillSkipped > 0 {
		fmt.Fprintf(&b, "  backfill skipped: %d seqs\n", r.BackfillSkipped)
	}
	fmt.Fprintf(&b, "  primary epoch: %d; stale source acks fenced: %d\n",
		r.PrimaryEpoch, r.StaleSourceAcks)
	if len(r.TailTraffic) > 0 {
		var classes []string
		for c := range r.TailTraffic {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		b.WriteString("  tail-circuit traffic (attempted traversals):\n")
		for _, c := range classes {
			tc := r.TailTraffic[c]
			ft := r.TailTrafficFault[c]
			fmt.Fprintf(&b, "    %-9s %6d pkts %8d B  (in fault windows: %d pkts %d B)\n",
				c, tc.Packets, tc.Bytes, ft.Packets, ft.Bytes)
		}
	}
	fmt.Fprintf(&b, "  flight recorder: %d chains (%d complete), %d timeline samples\n",
		r.FlightChains, r.FlightComplete, len(r.Flight))
	fmt.Fprintf(&b, "  health engine: %d evals, %d alerts (detection bound %v)\n",
		r.HealthEvals, len(r.HealthAlerts), r.HealthBound)
	if len(r.HealthDetection) > 0 {
		var rules []string
		for rule := range r.HealthDetection {
			rules = append(rules, rule)
		}
		sort.Strings(rules)
		for _, rule := range rules {
			fmt.Fprintf(&b, "    first %s raise at t=%v\n", rule, r.HealthDetection[rule])
		}
	}
	fmt.Fprintf(&b, "  trace hash: %016x\n", r.TraceHash)
	if r.OK() {
		b.WriteString("  PASS: all invariants held\n")
	} else {
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  FAIL %s\n", v)
		}
	}
	return b.String()
}

// bump adds one attempted traversal to a traffic-class counter.
func bump(m map[string]TrafficCounters, cls string, size int) {
	c := m[cls]
	c.Packets++
	c.Bytes += uint64(size)
	m[cls] = c
}

// ackKey identifies one acknowledgement stream for monotonicity tracking.
type ackKey struct {
	node int
	typ  wire.Type
	src  wire.SourceID
	grp  wire.GroupID
}

// harness owns one run's mutable state.
type harness struct {
	cfg Config
	tb  *lbrm.Testbed
	res *Result

	key    lbrm.StreamKey
	logKey lbrm.LogStreamKey

	// Current handler incarnations (replaced on restart).
	receivers   [][]*lbrm.Receiver
	secondaries []*lbrm.SecondaryLogger
	regionals   []*lbrm.SecondaryLogger
	// primaries[0] is the original primary's node; 1.. are replicas.
	primaries    []*lbrm.PrimaryLogger
	primaryNodes []*lbrm.SimNode

	// Hierarchy-invariant state (Regions > 0): priDown is the acting
	// primary's host down-link; every NACK traversal there must stamp the
	// tree depth (tier-skip invariant), priNacks counts them.
	priDown     *lbrm.Link
	priNacks    uint64
	tierSkipHit bool

	// Every handler ever created, for shutdown.
	stoppables []interface{ Stop() }

	// Tap state.
	hash           uint64
	lastAck        map[ackKey]uint64
	primaryCrashAt time.Time
	promoteAt      time.Time

	// Epoch-fencing invariant state.
	start time.Time
	// lastEpoch tracks the highest primary epoch each node has stamped on
	// authority-bearing traffic (per incarnation; cleared on crash).
	lastEpoch map[int]uint32
	// excuseFrom/To is the window in which the original primary is excused
	// from the un-fenced-primary check: it is isolated by a source-segment
	// partition (or just healed and has not yet heard the new epoch).
	excuseFrom, excuseTo time.Time
	monitorStop          bool
	unfencedHit          bool
	epochHit             bool

	// Recovery-bandwidth accounting.
	tailLinks    map[*lbrm.Link]bool
	tailUpSite   map[*lbrm.Link]int
	faultWindows []timeWindow
	// nackUp counts attempted TypeNack traversals per receiver site's
	// tail-up link; deadNacks accumulates NacksToPrimary of crashed
	// handler incarnations per site.
	nackUp, deadNacks []uint64

	// Metrics-vs-tap cross-check state (DESIGN.md §9). Every protocol
	// handler's host up-link is registered here together with the obs sink
	// its incarnations share: the testbed retains each sink in the handler
	// config and restarts rebuild from that config, so one registry
	// accumulates across incarnations. Every send a handler makes traverses
	// its host up-link exactly once (drops included — components count
	// before env.Send, the tap counts attempted traversals), and nothing
	// else routes through that link, so the tap-side per-class counts in
	// upTx must reconcile exactly with the sink's "<pfx>.tx.<class>"
	// counters.
	upNode   map[*lbrm.Link]int
	nodeID   []int
	nodeName []string
	nodePfx  []string
	nodeSink []*obs.Sink
	upTx     [][]TrafficCounters // [registered node][wire.TrafficClass]
	// Per-site sink handles for the metrics-side NACK budget identity.
	siteSecSink []*obs.Sink
	siteRcvSink [][]*obs.Sink
	// Health engine state (DESIGN.md §15): per-site + servers samplers
	// fed from the flight tick, evaluated on the same cadence.
	healthSink  *obs.Sink
	hEngine     *health.Engine
	siteSampler []*series.Sampler
	srvSampler  *series.Sampler
	srvSinks    []*obs.Sink

	// Flight-recorder reconciliation state (DESIGN.md §10): recovered is
	// the harness's own ledger of retransmitted deliveries per receiver
	// (recorded via the receivers' OnData hook, surviving restarts because
	// the testbed retains the wrapped config); repairs and nackFirst are
	// the wire tap's independent measurements of repair arrivals on each
	// receiver's host down-link and first NACK departure per sequence on
	// its up-link. rcvRestarted marks receivers whose flight ring spans
	// incarnations — only the relaxed chain check applies to those.
	recovered    [][]map[uint64]bool
	rcvRestarted [][]bool
	// delivered is the harness's complete per-receiver delivery ledger
	// (every OnData event, retransmitted or not); maxSourceAck is the
	// highest sequence the tap saw any primary source-ack (attempted
	// non-dropped traversals). Both feed invariant 11.
	delivered    [][]map[uint64]bool
	maxSourceAck uint64
	rcvDown      map[*lbrm.Link]rcvRef
	rcvUp        map[*lbrm.Link]rcvRef
	repairs      [][]map[uint64][]tapRepair
	nackFirst    [][]map[uint64]time.Time
	// flightReg accumulates the stitched chains' latency breakdowns
	// (obs.FoldFlightChains); merged into Result.Metrics.
	flightReg *obs.Registry
}

// rcvRef locates one receiver in the deployment.
type rcvRef struct{ site, idx int }

// tapRepair is one repair-classified arrival the wire tap observed heading
// for a receiver's host down-link: at is the delivery instant (tap time
// plus the link's propagation delay — host links are jitter-free), path is
// the wire-level recovery-path classification.
type tapRepair struct {
	at   time.Time
	path wire.RecoveryPath
}

// timeWindow is a half-open absolute time interval.
type timeWindow struct{ from, to time.Time }

// monitorEvery is the un-fenced-primary check cadence.
const monitorEvery = 25 * time.Millisecond

// fenceGrace is how long after a heal a stale acting primary is still
// excused: one heartbeat interval (HMax 400ms) plus propagation slack must
// suffice for it to hear the new epoch and self-demote.
const fenceGrace = 650 * time.Millisecond

// flightTick is the reconciliation tolerance between the flight recorder's
// hop timestamps and the wire tap's independent measurement: one host-link
// propagation delay (host links carry no jitter, so delivery happens at
// tap time + delay exactly; the tolerance absorbs rounding only).
const flightTick = netsim.DefaultLANDelay

// flightSampleEvery is the fleet timeline sampler cadence.
const flightSampleEvery = time.Second

// Run executes one chaos run and returns its verdict. The only error cases
// are construction failures; invariant violations are reported in the
// Result, not as errors.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.CrashPrimary && cfg.Replicas < 1 {
		return nil, fmt.Errorf("chaos: CrashPrimary requires at least one replica")
	}
	if cfg.SourcePartition && cfg.Replicas < 1 {
		return nil, fmt.Errorf("chaos: SourcePartition requires at least one replica")
	}
	if cfg.SourcePartition && cfg.CrashPrimary {
		return nil, fmt.Errorf("chaos: SourcePartition and CrashPrimary are mutually exclusive (both target the acting primary)")
	}
	if cfg.Quorum > 0 {
		if cfg.Quorum > cfg.Replicas {
			return nil, fmt.Errorf("chaos: write quorum %d unsatisfiable with %d replicas", cfg.Quorum, cfg.Replicas)
		}
		switch cfg.QuorumFault {
		case "", quorumFaultCrashPrimary, quorumFaultCrashReplica, quorumFaultRingLink, quorumFaultNone:
		default:
			return nil, fmt.Errorf("chaos: unknown QuorumFault %q", cfg.QuorumFault)
		}
	}
	if cfg.Regions > 0 {
		if cfg.Quorum > 0 || cfg.CrashPrimary || cfg.SourcePartition || cfg.Replicas > 0 {
			return nil, fmt.Errorf("chaos: the hierarchy schedule is mutually exclusive with Quorum, Replicas, CrashPrimary and SourcePartition")
		}
		if cfg.Sites < cfg.Regions {
			return nil, fmt.Errorf("chaos: %d regions need at least as many sites, have %d", cfg.Regions, cfg.Sites)
		}
		switch cfg.HierarchyFault {
		case "", hierFaultRegionalCrash, hierFaultTierPartition, hierFaultCascade:
		default:
			return nil, fmt.Errorf("chaos: unknown HierarchyFault %q", cfg.HierarchyFault)
		}
	}
	if cfg.HealthFault != "" {
		if cfg.Quorum > 0 || cfg.Regions > 0 || cfg.CrashPrimary || cfg.SourcePartition {
			return nil, fmt.Errorf("chaos: HealthFault is mutually exclusive with Quorum, Regions, CrashPrimary and SourcePartition")
		}
		switch cfg.HealthFault {
		case healthFaultCryingBaby, healthFaultRegionalLoss, healthFaultNone:
		default:
			return nil, fmt.Errorf("chaos: unknown HealthFault %q", cfg.HealthFault)
		}
	}
	schedule := buildSchedule(cfg)

	// The harness's own recovery ledger, fed by the receivers' OnData hook:
	// every Retransmitted delivery lands here, independent of the flight
	// recorder it will later be reconciled against. The maps are allocated
	// up front so the ConfigureReceiver closures (retained in the receiver
	// configs, hence surviving crash/restart) can capture them.
	recovered := make([][]map[uint64]bool, cfg.Sites)
	delivered := make([][]map[uint64]bool, cfg.Sites)
	for s := range recovered {
		recovered[s] = make([]map[uint64]bool, cfg.ReceiversPerSite)
		delivered[s] = make([]map[uint64]bool, cfg.ReceiversPerSite)
		for j := range recovered[s] {
			recovered[s][j] = make(map[uint64]bool)
			delivered[s][j] = make(map[uint64]bool)
		}
	}

	// The revert knob runs the quorum schedule and invariant checks with
	// quorum replication itself off: the primary acks (and the sender
	// releases) ahead of replication again, re-opening the loss window
	// invariant 11 exists to close.
	pq := cfg.Quorum
	if cfg.quorumRevert {
		pq = 0
	}
	// Handlers send from Start (the quorum ring installation), before this
	// function can build its link-registration maps: buffer those boot
	// traversals and replay them through the real tap once registration is
	// done, so the transmit ledgers start complete.
	var boot []lbrm.TapEvent
	secCfg := lbrm.SecondaryConfig{
		NackDelay:      10 * time.Millisecond,
		RequestTimeout: 200 * time.Millisecond,
	}
	if cfg.Regions > 0 {
		// Re-homing burns MaxRetries per chain candidate; keep the walk
		// fast enough that children reach a live sibling well inside the
		// fault window.
		secCfg.MaxRetries = 2
	}
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed:             cfg.Seed,
		Sites:            cfg.Sites,
		ReceiversPerSite: cfg.ReceiversPerSite,
		Replicas:         cfg.Replicas,
		Regions:          cfg.Regions,
		Tap:              func(ev lbrm.TapEvent) { boot = append(boot, ev) },
		Primary:          lbrm.PrimaryConfig{UnsafeNoFence: cfg.disableFencing, Quorum: pq},
		ConfigureReceiver: func(site, idx int, rcfg *lbrm.ReceiverConfig) {
			if cfg.flatRevert {
				// Revert knob: strip the multi-tier chain so the receiver
				// escalates site → primary as in the flat design.
				rcfg.Loggers = nil
			}
			rec := recovered[site][idx]
			del := delivered[site][idx]
			rcfg.OnData = func(e lbrm.Event) {
				del[e.Seq] = true
				if e.Retransmitted {
					rec[e.Seq] = true
				}
			}
		},
		Sender: lbrm.SenderConfig{
			Heartbeat:       lbrm.HeartbeatParams{HMin: 50 * time.Millisecond, HMax: 400 * time.Millisecond, Backoff: 2},
			FailoverTimeout: cfg.FailoverTimeout,
			FailoverWait:    cfg.FailoverWait,
		},
		Secondary: secCfg,
		Receiver: lbrm.ReceiverConfig{
			NackDelay:      10 * time.Millisecond,
			RequestTimeout: 200 * time.Millisecond,
		},
	})
	if err != nil {
		return nil, err
	}

	h := &harness{
		cfg: cfg,
		tb:  tb,
		res: &Result{
			Seed: cfg.Seed, Schedule: schedule,
			TailTraffic:      make(map[string]TrafficCounters),
			TailTrafficFault: make(map[string]TrafficCounters),
		},
		key:        lbrm.StreamKey{Source: tb.Source, Group: tb.Group},
		logKey:     lbrm.LogStreamKey{Source: tb.Source, Group: tb.Group},
		lastAck:    make(map[ackKey]uint64),
		lastEpoch:  make(map[int]uint32),
		tailLinks:  make(map[*lbrm.Link]bool),
		tailUpSite: make(map[*lbrm.Link]int),
		nackUp:     make([]uint64, cfg.Sites),
		deadNacks:  make([]uint64, cfg.Sites),
		recovered:  recovered,
		delivered:  delivered,
		rcvDown:    make(map[*lbrm.Link]rcvRef),
		rcvUp:      make(map[*lbrm.Link]rcvRef),
	}
	for s, ts := range tb.Sites {
		h.rcvRestarted = append(h.rcvRestarted, make([]bool, cfg.ReceiversPerSite))
		h.repairs = append(h.repairs, make([]map[uint64][]tapRepair, cfg.ReceiversPerSite))
		h.nackFirst = append(h.nackFirst, make([]map[uint64]time.Time, cfg.ReceiversPerSite))
		for j, node := range ts.ReceiverNodes {
			h.rcvDown[node.DownLink()] = rcvRef{site: s, idx: j}
			h.rcvUp[node.UpLink()] = rcvRef{site: s, idx: j}
			h.repairs[s][j] = make(map[uint64][]tapRepair)
			h.nackFirst[s][j] = make(map[uint64]time.Time)
		}
	}
	h.tailLinks[tb.SourceSite.TailUp()] = true
	h.tailLinks[tb.SourceSite.TailDown()] = true
	for i, ts := range tb.Sites {
		h.tailLinks[ts.Site.TailUp()] = true
		h.tailLinks[ts.Site.TailDown()] = true
		h.tailUpSite[ts.Site.TailUp()] = i
	}
	h.upNode = make(map[*lbrm.Link]int)
	regNode := func(node *lbrm.SimNode, name, pfx string, sink *obs.Sink) {
		h.upNode[node.UpLink()] = len(h.nodeSink)
		h.nodeID = append(h.nodeID, int(node.ID()))
		h.nodeName = append(h.nodeName, name)
		h.nodePfx = append(h.nodePfx, pfx)
		h.nodeSink = append(h.nodeSink, sink)
		h.upTx = append(h.upTx, make([]TrafficCounters, wire.NumTrafficClasses))
	}
	regNode(tb.SenderNode, "sender", "sender", tb.SenderCfg.Obs)
	regNode(tb.PrimaryNode, "primary", "primary", tb.PrimaryCfg.Obs)
	h.srvSinks = append(h.srvSinks, tb.PrimaryCfg.Obs)
	for i, node := range tb.ReplicaNodes {
		regNode(node, fmt.Sprintf("replica%d", i), "primary", tb.ReplicaCfgs[i].Obs)
		h.srvSinks = append(h.srvSinks, tb.ReplicaCfgs[i].Obs)
	}
	for i, reg := range tb.Regions {
		regNode(reg.LoggerNode, fmt.Sprintf("region%d/logger", i+1), "secondary", reg.LoggerCfg.Obs)
		h.regionals = append(h.regionals, reg.Logger)
		h.stoppables = append(h.stoppables, reg.Logger)
	}
	if cfg.Regions > 0 {
		h.priDown = tb.PrimaryNode.DownLink()
	}
	for i, ts := range tb.Sites {
		regNode(ts.SecondaryNode, fmt.Sprintf("site%d/secondary", i+1), "secondary", ts.SecondaryCfg.Obs)
		h.siteSecSink = append(h.siteSecSink, ts.SecondaryCfg.Obs)
		var sinks []*obs.Sink
		for j, node := range ts.ReceiverNodes {
			regNode(node, fmt.Sprintf("site%d/rcv%d", i+1, j), "recv", ts.ReceiverCfgs[j].Obs)
			sinks = append(sinks, ts.ReceiverCfgs[j].Obs)
		}
		h.siteRcvSink = append(h.siteRcvSink, sinks)
	}
	for _, ts := range tb.Sites {
		h.receivers = append(h.receivers, append([]*lbrm.Receiver(nil), ts.Receivers...))
		h.secondaries = append(h.secondaries, ts.Secondary)
	}
	h.primaries = append([]*lbrm.PrimaryLogger{tb.Primary}, tb.Replicas...)
	h.primaryNodes = append([]*lbrm.SimNode{tb.PrimaryNode}, tb.ReplicaNodes...)
	h.stoppables = append(h.stoppables, tb.Sender, tb.Primary)
	for _, r := range tb.Replicas {
		h.stoppables = append(h.stoppables, r)
	}
	for _, ts := range tb.Sites {
		h.stoppables = append(h.stoppables, ts.Secondary)
		for _, r := range ts.Receivers {
			h.stoppables = append(h.stoppables, r)
		}
	}
	for _, ev := range boot {
		h.tap(ev)
	}
	tb.Net.SetTap(h.tap)

	clk := tb.Net.Clock()
	h.start = clk.Now()
	for _, f := range schedule {
		f := f
		clk.AfterFunc(f.At, func() { h.applyFault(f) })
		h.faultWindows = append(h.faultWindows, timeWindow{
			from: h.start.Add(f.At), to: h.start.Add(f.At + f.Dur)})
		if f.Kind == "partition-source" {
			h.excuseFrom = h.start.Add(f.At)
			h.excuseTo = h.start.Add(f.At + f.Dur + fenceGrace)
		}
	}
	h.startHealth()
	h.startMonitor()
	h.startFlightSampler()

	// Traffic phase: steady low-rate data through the whole fault window.
	for t := time.Duration(0); t < cfg.Duration; t += cfg.SendEvery {
		seq, err := tb.Send([]byte("chaos-payload"))
		if err != nil {
			return nil, err
		}
		h.res.LastSeq = seq
		tb.Run(cfg.SendEvery)
	}

	// Convergence phase: every fault has healed (buildSchedule guarantees
	// At+Dur < Duration); poll until the invariant targets are met.
	healAt := clk.Now()
	const poll = 100 * time.Millisecond
	converged := false
	for el := time.Duration(0); el < cfg.ConvergeWithin; el += poll {
		tb.Run(poll)
		if h.converged() {
			converged = true
			h.res.ConvergeTook = clk.Now().Sub(healAt)
			break
		}
	}
	if !converged {
		h.violate("convergence", h.lagReport())
	} else {
		// Quiesce: after convergence, recovery traffic must dry up. Cold
		// restarted servers may still be draining a terminating fetch
		// schedule (bounded by MaxRetries), so allow a few windows for the
		// tail — but a leaked retry loop or synchronized retry storm never
		// produces a silent window.
		before := h.nackCount()
		quiet := false
		for i := 0; i < 6 && !quiet; i++ {
			tb.Run(cfg.QuiesceWindow)
			after := h.nackCount()
			quiet = after == before
			before = after
		}
		if !quiet {
			h.violate("quiesce", fmt.Sprintf("NACK traffic still flowing %v after convergence",
				6*cfg.QuiesceWindow))
		}
	}

	h.finishHealth()
	h.checkFinalInvariants()

	// Shutdown: stop every handler ever created and drain. Anything still
	// pending after the drain re-armed itself past shutdown — a leak. The
	// monitor is stopped first so its last armed tick fires into a no-op
	// instead of re-arming forever.
	h.monitorStop = true
	for _, s := range h.stoppables {
		s.Stop()
	}
	tb.Run(30 * time.Second)
	if n := clk.Len(); n != 0 {
		h.violate("timer-leak", fmt.Sprintf("%d events still pending after shutdown drain", n))
	}

	h.res.TraceHash = h.hash
	h.res.NodeTx = make(map[string][]TrafficCounters, len(h.nodeName))
	for i, name := range h.nodeName {
		h.res.NodeTx[name] = append([]TrafficCounters(nil), h.upTx[i]...)
	}
	h.res.Failovers = h.tb.Sender.Stats().Failovers
	h.res.PrimaryEpoch = h.tb.Sender.PrimaryEpoch()
	h.res.StaleSourceAcks = h.tb.Sender.Stats().StaleSourceAcks
	for _, p := range h.primaries {
		h.res.Promotions += p.Stats().Promotions
		h.res.BackfillSkipped += p.Stats().BackfillSkipped
	}
	snaps := make([]obs.Snapshot, len(h.nodeSink))
	for i, s := range h.nodeSink {
		snaps[i] = s.Registry().Snapshot()
	}
	// The stitched chains' latency breakdowns (flight.* counters and
	// histograms, folded in checkFinalInvariants) join the fleet view,
	// as do the health engine's gauges and alert counters.
	snaps = append(snaps, h.flightReg.Snapshot(), h.healthSink.Registry().Snapshot())
	h.res.Metrics = obs.Merge(snaps...)
	// Close the fleet timeline with a final sample carrying the complete
	// merged view — the JSONL flight log is self-contained: periodic
	// samples plus the end-of-run flight.* chain summary.
	h.res.Flight = append(h.res.Flight, obs.FlightSample{
		At: clk.Now().UnixNano(), Metrics: h.res.Metrics,
	})
	h.res.SenderTrace = h.tb.SenderCfg.Obs.Ring().Snapshot()
	return h.res, nil
}

// startMonitor arms the continuous un-fenced-primary check: every
// monitorEvery of virtual time, at most one live acting primary may exist
// outside its excusal window.
func (h *harness) startMonitor() {
	clk := h.tb.Net.Clock()
	var tick func()
	tick = func() {
		if h.monitorStop {
			return
		}
		h.checkUnfenced(clk.Now())
		clk.AfterFunc(monitorEvery, tick)
	}
	clk.AfterFunc(monitorEvery, tick)
}

// startFlightSampler arms the fleet timeline: every flightSampleEvery of
// virtual time, one merged metrics snapshot of every node sink is appended
// to the run's flight log. Always on — the sampler is part of the harness's
// contract, not an option.
func (h *harness) startFlightSampler() {
	clk := h.tb.Net.Clock()
	var tick func()
	tick = func() {
		if h.monitorStop {
			return
		}
		// Health first, so the flight sample carries this tick's fresh
		// health.* gauges rather than the previous tick's.
		h.sampleHealth(clk.Now().UnixNano())
		snaps := make([]obs.Snapshot, 0, len(h.nodeSink)+1)
		for _, s := range h.nodeSink {
			snaps = append(snaps, s.Registry().Snapshot())
		}
		snaps = append(snaps, h.healthSink.Registry().Snapshot())
		h.res.Flight = append(h.res.Flight, obs.FlightSample{
			At: clk.Now().UnixNano(), Metrics: obs.Merge(snaps...),
		})
		clk.AfterFunc(flightSampleEvery, tick)
	}
	clk.AfterFunc(flightSampleEvery, tick)
}

// checkUnfenced enforces "at most one un-fenced acting primary at every
// virtual instant". The original primary is excused while a source-segment
// partition isolates it — it cannot have heard the new epoch — and for
// fenceGrace after the heal, by which time a heartbeat carrying the new
// epoch must have demoted it.
func (h *harness) checkUnfenced(now time.Time) {
	acting := 0
	for i, node := range h.primaryNodes {
		if node.Crashed() || h.primaries[i].IsReplica() {
			continue
		}
		if i == 0 && !h.excuseFrom.IsZero() &&
			!now.Before(h.excuseFrom) && now.Before(h.excuseTo) {
			continue
		}
		acting++
	}
	if acting > 1 && !h.unfencedHit {
		h.unfencedHit = true
		h.violate("unfenced-primary", fmt.Sprintf(
			"%d un-fenced acting primaries at t=%v", acting, now.Sub(h.start)))
	}
}

// inFaultWindow reports whether t falls inside any scheduled fault window.
func (h *harness) inFaultWindow(t time.Time) bool {
	for _, w := range h.faultWindows {
		if !t.Before(w.from) && t.Before(w.to) {
			return true
		}
	}
	return false
}

func (h *harness) violate(name, detail string) {
	h.res.Violations = append(h.res.Violations, Violation{Name: name, Detail: detail})
}

// buildSchedule derives the fault plan purely from the seed. The fault rng
// is separate from the network's, so the schedule is a function of the
// config alone.
func buildSchedule(cfg Config) []Fault {
	rng := rand.New(rand.NewSource(cfg.Seed*0x9E3779B9 + 0x7F4A7C15))
	if cfg.HealthFault != "" {
		return healthSchedule(cfg, rng)
	}
	if cfg.Quorum > 0 {
		return quorumSchedule(cfg, rng)
	}
	if cfg.Regions > 0 {
		return hierarchySchedule(cfg, rng)
	}
	var kinds []string
	if !cfg.DisableCrashes {
		kinds = append(kinds, "crash-receiver", "crash-secondary")
		if cfg.Replicas > 0 {
			kinds = append(kinds, "crash-replica")
		}
	}
	if !cfg.DisablePartitions {
		kinds = append(kinds, "partition")
	}
	if !cfg.DisableLinkChaos {
		kinds = append(kinds, "flaky-link")
	}
	var out []Fault
	used := make(map[string]bool)
	target := func(f Fault) string {
		// Partition and flaky-link contend for the same tail links: treat
		// them as one target class per site so heals cannot clobber each
		// other's loss models.
		if f.Kind == "partition" || f.Kind == "flaky-link" {
			return fmt.Sprintf("link/%d", f.Site)
		}
		return fmt.Sprintf("%s/%d/%d", f.Kind, f.Site, f.Idx)
	}
	draw := func() (Fault, bool) {
		if len(kinds) == 0 {
			return Fault{}, false
		}
		f := Fault{
			Kind: kinds[rng.Intn(len(kinds))],
			Dur:  200*time.Millisecond + time.Duration(rng.Int63n(int64(1300*time.Millisecond))),
			Site: -1, Idx: -1,
		}
		if cfg.JoinWindow {
			// Join-window faults: everything lands before t = Duration/10,
			// while first contact is still being established.
			f.At = time.Duration(rng.Int63n(int64(cfg.Duration / 10)))
		} else {
			f.At = cfg.Duration/10 + time.Duration(rng.Int63n(int64(cfg.Duration*6/10)))
		}
		switch f.Kind {
		case "crash-receiver":
			f.Site = rng.Intn(cfg.Sites)
			f.Idx = rng.Intn(cfg.ReceiversPerSite)
		case "crash-secondary", "partition", "flaky-link":
			f.Site = rng.Intn(cfg.Sites)
		case "crash-replica":
			f.Idx = rng.Intn(cfg.Replicas)
		}
		return f, true
	}
	if cfg.Overlapping {
		// Overlapping windows on one tail circuit: a flaky-link window and
		// a partition window that intersect. Loss models stack (PushLoss
		// overlays), so the partition heal must not clobber the still-open
		// flaky window and vice versa.
		site := rng.Intn(cfg.Sites)
		used[fmt.Sprintf("link/%d", site)] = true
		out = append(out,
			Fault{Kind: "flaky-link", At: cfg.Duration / 4,
				Dur: 1500 * time.Millisecond, Site: site, Idx: -1},
			Fault{Kind: "partition", At: cfg.Duration/4 + 700*time.Millisecond,
				Dur: 1300 * time.Millisecond, Site: site, Idx: -1},
		)
	}
	// One fault per target keeps heals unambiguous, which also bounds the
	// schedule by the number of distinct targets: stop once draws keep
	// landing on used targets (narrow configs can exhaust them).
	for misses := 0; len(out) < cfg.Faults && misses < 64; {
		f, ok := draw()
		if !ok {
			break
		}
		if used[target(f)] {
			misses++
			continue
		}
		used[target(f)] = true
		out = append(out, f)
	}
	if cfg.CrashPrimary {
		out = append(out, Fault{
			Kind: "crash-primary",
			At:   cfg.Duration * 2 / 5,
			Dur:  1500 * time.Millisecond,
			Site: -1, Idx: -1,
		})
	}
	if cfg.SourcePartition {
		// Deterministic start (traffic established, room to heal and
		// reconverge); seed-drawn duration and isolation mode.
		out = append(out, Fault{
			Kind: "partition-source",
			At:   cfg.Duration * 2 / 5,
			Dur:  2*time.Second + time.Duration(rng.Int63n(int64(500*time.Millisecond))),
			Site: -1, Idx: rng.Intn(3),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// applyFault injects one fault and arms its heal.
func (h *harness) applyFault(f Fault) {
	clk := h.tb.Net.Clock()
	switch f.Kind {
	case "crash-receiver":
		node := h.tb.Sites[f.Site].ReceiverNodes[f.Idx]
		// Bank the dying incarnation's NACK count before it is replaced:
		// the nack-budget invariant sums over all incarnations.
		h.deadNacks[f.Site] += h.receivers[f.Site][f.Idx].Stats().NacksToPrimary
		// The shared flight ring now spans incarnations: duplicate
		// terminals are legitimate, so only the relaxed check applies.
		h.rcvRestarted[f.Site][f.Idx] = true
		h.crash(node)
		clk.AfterFunc(f.Dur, func() {
			rcv := lbrm.NewReceiver(h.tb.Sites[f.Site].ReceiverCfgs[f.Idx])
			h.receivers[f.Site][f.Idx] = rcv
			h.stoppables = append(h.stoppables, rcv)
			node.Restart(rcv)
		})
	case "crash-secondary":
		node := h.tb.Sites[f.Site].SecondaryNode
		h.deadNacks[f.Site] += h.secondaries[f.Site].Stats().NacksToPrimary
		h.crash(node)
		clk.AfterFunc(f.Dur, func() {
			sec := lbrm.NewSecondaryLogger(h.tb.Sites[f.Site].SecondaryCfg)
			h.secondaries[f.Site] = sec
			h.stoppables = append(h.stoppables, sec)
			node.Restart(sec)
		})
	case "crash-replica":
		node := h.tb.ReplicaNodes[f.Idx]
		h.crash(node)
		clk.AfterFunc(f.Dur, func() {
			rep := lbrm.NewPrimaryLogger(h.tb.ReplicaCfgs[f.Idx])
			h.primaries[1+f.Idx] = rep
			h.stoppables = append(h.stoppables, rep)
			node.Restart(rep)
		})
	case "crash-primary":
		node := h.tb.PrimaryNode
		h.primaryCrashAt = clk.Now()
		h.crash(node)
		clk.AfterFunc(f.Dur, func() {
			// A rebooted primary lost everything, including the knowledge
			// that it was primary: it comes back as a cold replica (the
			// sender has failed over — or will — to a live replica).
			rcfg := h.tb.PrimaryCfg
			rcfg.Replica = true
			rcfg.Replicas = nil
			rcfg.Peers = append([]lbrm.Addr(nil), h.tb.PrimaryCfg.Replicas...)
			rep := lbrm.NewPrimaryLogger(rcfg)
			h.primaries[0] = rep
			h.stoppables = append(h.stoppables, rep)
			node.Restart(rep)
		})
	case "partition":
		// Overlay, not SetLoss: fault windows may overlap on one tail
		// circuit (Overlapping schedules), and each heal must remove only
		// its own contribution.
		site := h.tb.Sites[f.Site].Site
		gate := &lbrm.Gate{Down: true}
		healUp := site.TailUp().PushLoss(gate)
		healDown := site.TailDown().PushLoss(gate)
		clk.AfterFunc(f.Dur, func() { healUp(); healDown() })
	case "crying-baby":
		// The §6 crying baby: one receiver's own drop cable turns lossy
		// while the rest of the fleet stays clean — it keeps missing data
		// (and losing repairs) and keeps demanding recovery from its site
		// secondary for the whole window.
		node := h.tb.Sites[f.Site].ReceiverNodes[f.Idx]
		heal := node.DownLink().PushLoss(lbrm.Bernoulli{P: 0.5})
		clk.AfterFunc(f.Dur, heal)
	case "regional-loss":
		// A sustained regional loss episode: the site's shared tail-down
		// drops a fraction of everything, so every receiver and the site
		// secondary keep missing data together and repair demand persists
		// beyond the site.
		site := h.tb.Sites[f.Site].Site
		heal := site.TailDown().PushLoss(lbrm.Bernoulli{P: 0.4})
		clk.AfterFunc(f.Dur, heal)
	case "flaky-link":
		site := h.tb.Sites[f.Site].Site
		heal := site.TailDown().PushLoss(lbrm.Compose(
			lbrm.Bernoulli{P: 0.3},
			lbrm.Reorder{P: 0.25, MaxDelay: 20 * time.Millisecond},
			lbrm.Duplicate{P: 0.1, Lag: 2 * time.Millisecond},
		))
		clk.AfterFunc(f.Dur, heal)
	case "sync-blackout":
		// Every sync-class packet leaving the acting primary's host —
		// LogSync records, ring tokens, ring installs — vanishes, while
		// data, acks and NACK service keep flowing: the primary keeps
		// logging (and, in quorum mode, parking acks) packets it can no
		// longer replicate. Overlay so the heal composes with anything
		// else on the link.
		heal := h.tb.PrimaryNode.UpLink().PushLoss(classDrop{cls: wire.ClassSync, p: 1})
		clk.AfterFunc(f.Dur, heal)
	case "ring-partition":
		// One ring replica's host is cut off both ways: its predecessor's
		// tokens die, the ring stalls, and the primary must fall back to
		// direct fan-in and repair a ring around the dead hop.
		heal := h.tb.ReplicaNodes[f.Idx].Isolate(true, true)
		clk.AfterFunc(f.Dur, heal)
	case "crash-regional":
		node := h.tb.Regions[f.Idx].LoggerNode
		h.crash(node)
		clk.AfterFunc(f.Dur, func() {
			// The restarted regional announces itself with the next tree
			// epoch so its TypeReparent out-fences the boot announcement
			// and pulls re-homed children back (DESIGN.md §13).
			rcfg := h.tb.Regions[f.Idx].LoggerCfg
			rcfg.TreeEpoch++
			reg := lbrm.NewSecondaryLogger(rcfg)
			h.regionals[f.Idx] = reg
			h.stoppables = append(h.stoppables, reg)
			node.Restart(reg)
		})
	case "partition-regional":
		// The regional keeps its state and timers but hears and reaches
		// nothing: children must degrade to the sibling region, never the
		// primary.
		heal := h.tb.Regions[f.Idx].LoggerNode.Isolate(true, true)
		clk.AfterFunc(f.Dur, heal)
	case "down-outage":
		// Gate only the site's tail-down: the site misses data together,
		// but its upward control path stays open, so recovery pressure
		// lands on whatever parent tier is (or is not) alive.
		heal := h.tb.Sites[f.Site].Site.TailDown().PushLoss(&lbrm.Gate{Down: true})
		clk.AfterFunc(f.Dur, heal)
	case "partition-source":
		// The acting primary's host is cut off — deaf, mute, or both — with
		// all its state and timers intact. It receives nothing (deaf) or
		// its acks vanish (mute), so the sender's idle detection fails over
		// to a replica and mints the next epoch; after the heal the stale
		// primary's authority must be fenced everywhere until a heartbeat
		// carrying the new epoch demotes it.
		h.primaryCrashAt = clk.Now()
		up := f.Idx == 0 || f.Idx == 1
		down := f.Idx == 0 || f.Idx == 2
		heal := h.tb.PrimaryNode.Isolate(up, down)
		clk.AfterFunc(f.Dur, heal)
	}
}

// crash takes a node down and forgets its acknowledgement and epoch
// watermarks (a new incarnation legitimately restarts both).
func (h *harness) crash(node *lbrm.SimNode) {
	node.Crash()
	id := int(node.ID())
	for k := range h.lastAck {
		if k.node == id {
			delete(h.lastAck, k)
		}
	}
	delete(h.lastEpoch, id)
}

// tap observes every link traversal: it folds the event into the trace
// hash, tracks ack monotonicity, and timestamps the failover Promote.
func (h *harness) tap(ev lbrm.TapEvent) {
	f := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		f.Write(buf[:])
	}
	put(h.hash)
	put(uint64(ev.Time.UnixNano()))
	put(uint64(int64(ev.From)))
	put(uint64(int64(ev.To)))
	put(uint64(ev.Size))
	if ev.Dropped {
		put(1)
	} else {
		put(0)
	}
	h.hash = f.Sum64()

	var p wire.Packet
	if p.Unmarshal(ev.Data) != nil {
		return
	}
	// Recovery-bandwidth accounting counts attempted traversals, drops
	// included: a NACK that dies in a partition still spent the attempt,
	// and the budget identity below must hold regardless of loss.
	if h.tailLinks[ev.Link] {
		cls := trafficClass(p.Type)
		bump(h.res.TailTraffic, cls, ev.Size)
		if h.inFaultWindow(ev.Time) {
			bump(h.res.TailTrafficFault, cls, ev.Size)
		}
	}
	if site, ok := h.tailUpSite[ev.Link]; ok && p.Type == wire.TypeNack {
		h.nackUp[site]++
	}
	// Tier-skip invariant (hierarchy runs): every NACK reaching the
	// primary's host must be stamped with the primary's global tier —
	// a lower stamp means some live tier was skipped on the way up.
	if h.priDown != nil && ev.Link == h.priDown && p.Type == wire.TypeNack {
		h.priNacks++
		if want := treeDepth; p.Tier() != want && !h.tierSkipHit {
			h.tierSkipHit = true
			h.violate("tier-skip", fmt.Sprintf(
				"NACK at the primary stamped tier %d, want %d (escalation skipped a tier)",
				p.Tier(), want))
		}
	}
	// Per-handler transmit ledger: every send a handler makes crosses its
	// host up-link exactly once (attempted traversals, drops included),
	// keyed by the same wire.TrafficClass the component metrics use.
	if idx, ok := h.upNode[ev.Link]; ok {
		c := &h.upTx[idx][wire.ClassOf(p.Type)]
		c.Packets++
		c.Bytes += uint64(ev.Size)
	}
	// Flight-recorder wire truth. First NACK departure per sequence on each
	// receiver's host up-link (attempted traversals, drops included — a NACK
	// that dies downstream was still issued at this instant), and every
	// repair-classified arrival heading for its down-link (delivery happens
	// at tap time + link delay; host links are jitter-free).
	if ref, ok := h.rcvUp[ev.Link]; ok && p.Type == wire.TypeNack {
		m := h.nackFirst[ref.site][ref.idx]
		for _, rg := range p.Ranges {
			for seq := rg.From; seq <= rg.To; seq++ {
				if _, seen := m[seq]; !seen {
					m[seq] = ev.Time
				}
			}
		}
	}
	if ref, ok := h.rcvDown[ev.Link]; ok && !ev.Dropped {
		if path := wire.ClassifyRecovery(p.Type, p.Flags); path != wire.PathNone {
			m := h.repairs[ref.site][ref.idx]
			m[p.Seq] = append(m[p.Seq], tapRepair{at: ev.Time.Add(ev.Link.Delay()), path: path})
		}
	}
	if ev.Dropped {
		return
	}
	// Epoch monotonicity per observer: within one incarnation, no node's
	// authority-bearing traffic may regress to a lower primary epoch.
	var pe uint32
	hasEpoch := false
	switch p.Type {
	case wire.TypeHeartbeat:
		pe, hasEpoch = p.PrimaryEpoch, true
	case wire.TypeSourceAck, wire.TypeLogSync, wire.TypeLogSyncAck,
		wire.TypePromote, wire.TypePrimaryRedirect, wire.TypeLogStateReply,
		wire.TypeQuorumAck, wire.TypeRingConfig:
		pe, hasEpoch = p.Epoch, true
	}
	// Invariant 11's durability watermark: the highest sequence any
	// primary ever source-acked on the wire (non-dropped — a lost ack
	// never released anything at the sender).
	if p.Type == wire.TypeSourceAck && p.Seq > h.maxSourceAck {
		h.maxSourceAck = p.Seq
	}
	if hasEpoch {
		id := int(ev.From)
		if last, ok := h.lastEpoch[id]; ok && pe < last {
			if !h.epochHit {
				h.epochHit = true
				h.violate("epoch-monotonicity", fmt.Sprintf(
					"node %d %s epoch regressed %d -> %d", ev.From, p.Type, last, pe))
			}
		} else {
			h.lastEpoch[id] = pe
		}
	}
	switch p.Type {
	case wire.TypeSourceAck, wire.TypeLogSyncAck:
		k := ackKey{node: int(ev.From), typ: p.Type, src: p.Source, grp: p.Group}
		if last, ok := h.lastAck[k]; ok && p.Seq < last {
			h.violate("ack-monotonicity", fmt.Sprintf(
				"node %d %s regressed %d -> %d", ev.From, p.Type, last, p.Seq))
		} else {
			h.lastAck[k] = p.Seq
		}
	case wire.TypePromote:
		if h.promoteAt.IsZero() && !h.primaryCrashAt.IsZero() {
			h.promoteAt = ev.Time
		}
	}
}

// converged reports whether every live receiver has resolved everything up
// to the last sent sequence number and the sender's buffer has drained.
func (h *harness) converged() bool {
	if h.tb.Sender.Retained() != 0 {
		return false
	}
	for s, ts := range h.tb.Sites {
		for i, node := range ts.ReceiverNodes {
			if node.Crashed() {
				continue
			}
			if h.receivers[s][i].Contiguous(h.key) < h.res.LastSeq {
				return false
			}
		}
	}
	return true
}

// lagReport names the convergence stragglers.
func (h *harness) lagReport() string {
	var lags []string
	if n := h.tb.Sender.Retained(); n != 0 {
		lags = append(lags, fmt.Sprintf("sender retains %d", n))
	}
	for s, ts := range h.tb.Sites {
		for i, node := range ts.ReceiverNodes {
			if node.Crashed() {
				continue
			}
			if got := h.receivers[s][i].Contiguous(h.key); got < h.res.LastSeq {
				lags = append(lags, fmt.Sprintf("site%d/rcv%d at %d/%d", s+1, i, got, h.res.LastSeq))
			}
		}
	}
	return strings.Join(lags, "; ")
}

// nackCount sums NACK traffic across the deployment.
func (h *harness) nackCount() uint64 {
	var n uint64
	for s := range h.receivers {
		for _, r := range h.receivers[s] {
			n += r.Stats().NacksSent
		}
		if sec := h.secondaries[s]; sec != nil {
			n += sec.Stats().NacksToPrimary
		}
	}
	for _, reg := range h.regionals {
		n += reg.Stats().NacksToPrimary
	}
	for _, p := range h.primaries {
		n += p.Stats().BackfillNacks
	}
	return n
}

// checkFinalInvariants runs the post-convergence structural checks.
func (h *harness) checkFinalInvariants() {
	h.checkHealthInvariants()
	// Exactly one acting primary among live logging servers.
	acting := 0
	for i, node := range h.primaryNodes {
		if node.Crashed() {
			continue
		}
		if !h.primaries[i].IsReplica() {
			acting++
		}
	}
	if acting != 1 {
		h.violate("single-primary", fmt.Sprintf("%d acting primaries among live loggers", acting))
	}
	// NACK budget (§2.2.2): every NACK traversal attempted on a receiver
	// site's tail-up circuit must be one the site's secondary or receivers
	// counted as sent to the primary — summed over every incarnation.
	// Recovery load on the backbone is exactly the per-site aggregate.
	for s := range h.tb.Sites {
		want := h.deadNacks[s]
		if sec := h.secondaries[s]; sec != nil {
			want += sec.Stats().NacksToPrimary
		}
		for _, r := range h.receivers[s] {
			want += r.Stats().NacksToPrimary
		}
		if got := h.nackUp[s]; got != want {
			h.violate("nack-budget", fmt.Sprintf(
				"site%d tail-up saw %d NACK traversals but components account for %d",
				s+1, got, want))
		}
	}
	// Metrics-vs-tap reconciliation (DESIGN.md §9): each handler counted
	// its own transmissions per traffic class at the send site; the wire
	// tap independently counted attempted traversals of that handler's
	// host up-link. The two ledgers were kept by different code on
	// opposite sides of the transport boundary and must agree exactly —
	// across every incarnation, since restarts reuse the retained sink.
	for idx, sink := range h.nodeSink {
		snap := sink.Registry().Snapshot()
		for cls := wire.TrafficClass(0); cls < wire.NumTrafficClasses; cls++ {
			base := h.nodePfx[idx] + ".tx." + cls.String()
			wantP := snap.Counters[base+".pkts"]
			wantB := snap.Counters[base+".bytes"]
			got := h.upTx[idx][cls]
			if got.Packets != wantP || got.Bytes != wantB {
				h.violate("metrics-reconcile", fmt.Sprintf(
					"%s %s: tap saw %d pkts / %d B on the up-link, metrics report %d pkts / %d B",
					h.nodeName[idx], cls, got.Packets, got.Bytes, wantP, wantB))
			}
		}
	}
	// The §2.2.2 NACK budget settled against the metrics registry instead
	// of handler stats: sinks persist across incarnations, so unlike the
	// stats-based check above no dead-incarnation banking is needed.
	for s := range h.tb.Sites {
		want := h.siteSecSink[s].Counter("secondary.nacks_to_primary").Value()
		for _, sink := range h.siteRcvSink[s] {
			want += sink.Counter("recv.nacks_to_primary").Value()
		}
		if got := h.nackUp[s]; got != want {
			h.violate("nack-budget-metrics", fmt.Sprintf(
				"site%d tail-up saw %d NACK traversals but metrics account for %d",
				s+1, got, want))
		}
	}
	// Epoch gauges vs the tap's per-node epoch watermark: components set
	// their epoch gauge before sending anything stamped with that epoch,
	// and the watermark is per incarnation (cleared on crash), so no
	// node's gauge may end below the highest epoch the tap saw it stamp.
	// The sender never crashes and must agree with its own API exactly.
	epochGauge := map[string]string{
		"sender":    "sender.primary_epoch",
		"primary":   "primary.epoch",
		"secondary": "secondary.primary_epoch",
		"recv":      "recv.primary_epoch",
	}
	for idx, sink := range h.nodeSink {
		last, seen := h.lastEpoch[h.nodeID[idx]]
		if !seen {
			continue
		}
		if g := sink.Gauge(epochGauge[h.nodePfx[idx]]).Value(); g < int64(last) {
			h.violate("epoch-gauge", fmt.Sprintf(
				"%s epoch gauge %d below tap watermark %d", h.nodeName[idx], g, last))
		}
	}
	if g := h.tb.SenderCfg.Obs.Gauge("sender.primary_epoch").Value(); g != int64(h.tb.Sender.PrimaryEpoch()) {
		h.violate("epoch-gauge", fmt.Sprintf(
			"sender epoch gauge %d != PrimaryEpoch() %d", g, h.tb.Sender.PrimaryEpoch()))
	}
	h.checkFlightRecorder()
	h.checkQuorumInvariants()
	h.checkHierarchyInvariants()
	// Failover latency bound: detection needs backlog (≤ SendEvery old)
	// aged past FailoverTimeout, observed by a jittered check firing at
	// ≤ 1.25×FailoverTimeout intervals; then one probe round (FailoverWait)
	// plus source-site RTT slack.
	if !h.primaryCrashAt.IsZero() {
		bound := h.cfg.FailoverTimeout*5/2 + h.cfg.FailoverWait + h.cfg.SendEvery + 250*time.Millisecond
		if h.promoteAt.IsZero() {
			h.violate("failover", "primary crashed but no Promote was ever sent")
		} else if lat := h.promoteAt.Sub(h.primaryCrashAt); lat > bound {
			h.violate("failover", fmt.Sprintf("crash->promote took %v, bound %v", lat, bound))
		} else {
			h.res.FailoverLatency = lat
		}
	}
}

// absDur returns |ns| as a duration.
func absDur(ns int64) time.Duration {
	if ns < 0 {
		ns = -ns
	}
	return time.Duration(ns)
}

// checkFlightRecorder is the flight recorder's headline invariant
// (DESIGN.md §10): every packet the harness observed a receiver recover
// must have a complete, causally ordered recovery chain stitched from the
// flight rings, and the chain's hop timestamps must reconcile with the wire
// tap's independent measurements within flightTick.
//
// For each receiver, its sink's flight ring (detections, NACKs, terminals)
// is stitched against every server-side ring — sender, primary, replicas
// and all secondaries (a remote site's re-multicast can repair a local
// loss). Strict receivers get the full check; receivers that crashed share
// one ring across incarnations, where duplicate terminals and re-detections
// are legitimate, so only chain existence and a deliver event are required.
// The stitched latency breakdowns are folded into flightReg for the fleet
// metrics view.
func (h *harness) checkFlightRecorder() {
	h.flightReg = obs.NewRegistry()
	servers := [][]obs.Event{
		h.tb.SenderCfg.Obs.FlightRing().Snapshot(),
		h.tb.PrimaryCfg.Obs.FlightRing().Snapshot(),
	}
	for i := range h.tb.ReplicaCfgs {
		servers = append(servers, h.tb.ReplicaCfgs[i].Obs.FlightRing().Snapshot())
	}
	for _, sink := range h.siteSecSink {
		servers = append(servers, sink.FlightRing().Snapshot())
	}
	// A broken recorder would trip once per recovered packet; cap the
	// detailed reports and summarize the rest.
	tripped := 0
	flag := func(name, detail string) {
		if tripped < 3 {
			h.violate(name, detail)
		}
		tripped++
	}
	for s := range h.siteRcvSink {
		for j, sink := range h.siteRcvSink[s] {
			chains := obs.StitchFlights(sink.FlightRing().Snapshot(), servers...)
			obs.FoldFlightChains(h.flightReg, chains)
			h.res.FlightChains += uint64(len(chains))
			for _, c := range chains {
				if c.Complete() {
					h.res.FlightComplete++
				}
			}
			relaxed := h.rcvRestarted[s][j]
			who := fmt.Sprintf("site%d/rcv%d", s+1, j)
			for seq := range h.recovered[s][j] {
				c := chains[seq]
				if c == nil {
					flag("flight-chain", fmt.Sprintf(
						"%s recovered seq %d with no flight chain", who, seq))
					continue
				}
				delivered := false
				for _, ev := range c.Events {
					if ev.Kind == obs.KindDeliver {
						delivered = true
						break
					}
				}
				if !delivered {
					flag("flight-chain", fmt.Sprintf(
						"%s recovered seq %d: chain has no deliver event", who, seq))
					continue
				}
				if relaxed {
					continue
				}
				if c.Terminal != obs.KindDeliver || !c.Complete() {
					flag("flight-chain", fmt.Sprintf(
						"%s seq %d: incomplete chain (terminal=%v terminals=%d detectAt=%d nackAt=%d serveAt=%d path=%v)",
						who, seq, c.Terminal, c.TerminalCount, c.DetectAt, c.NackAt, c.ServeAt, c.Path))
					continue
				}
				if !c.CausallyOrdered() {
					flag("flight-causal", fmt.Sprintf(
						"%s seq %d: hops out of causal order (detect=%d nack=%d serve=%d deliver=%d)",
						who, seq, c.DetectAt, c.NackAt, c.ServeAt, c.TerminalAt))
					continue
				}
				// Delivery reconciliation: the receiver delivers at the first
				// repair arrival the tap saw, and the delivering repair's
				// wire-classified path must match the chain's.
				arrivals := h.repairs[s][j][seq]
				if len(arrivals) == 0 {
					flag("flight-reconcile", fmt.Sprintf(
						"%s seq %d: chain delivers but the tap saw no repair arrive", who, seq))
					continue
				}
				first := arrivals[0]
				pathMatch := false
				for _, a := range arrivals {
					if a.at.Before(first.at) {
						first = a
					}
					if a.path == c.Path && absDur(c.TerminalAt-a.at.UnixNano()) <= flightTick {
						pathMatch = true
					}
				}
				if d := absDur(c.TerminalAt - first.at.UnixNano()); d > flightTick {
					flag("flight-reconcile", fmt.Sprintf(
						"%s seq %d: deliver at %d vs tap first repair arrival %d (off by %v, tolerance %v)",
						who, seq, c.TerminalAt, first.at.UnixNano(), d, flightTick))
				} else if !pathMatch {
					flag("flight-reconcile", fmt.Sprintf(
						"%s seq %d: chain path %v has no matching tap arrival near the delivery",
						who, seq, c.Path))
				}
				if !c.Detected() {
					continue
				}
				// The deliver event's own latency measurement must equal the
				// chain's detect→deliver span.
				if d := absDur(int64(c.DeliverLatency) - (c.TerminalAt - c.DetectAt)); d > flightTick {
					flag("flight-latency", fmt.Sprintf(
						"%s seq %d: recorded latency %v vs chain span %v",
						who, seq, c.DeliverLatency, time.Duration(c.TerminalAt-c.DetectAt)))
				}
				// NACK reconciliation: the chain's first NACK is the first
				// NACK the tap saw leave this receiver covering the seq.
				if c.NackAt != 0 {
					tapN, ok := h.nackFirst[s][j][seq]
					if !ok {
						flag("flight-reconcile", fmt.Sprintf(
							"%s seq %d: chain records a NACK the tap never saw leave", who, seq))
					} else if d := absDur(c.NackAt - tapN.UnixNano()); d > flightTick {
						flag("flight-reconcile", fmt.Sprintf(
							"%s seq %d: NACK at %d vs tap %d (off by %v)",
							who, seq, c.NackAt, tapN.UnixNano(), d))
					}
				}
			}
			// The converse: a strict receiver's deliver terminal must be a
			// recovery the harness itself observed — the recorder cannot
			// invent recoveries either.
			if !relaxed {
				for seq, c := range chains {
					if c.Terminal == obs.KindDeliver && !h.recovered[s][j][seq] {
						flag("flight-chain", fmt.Sprintf(
							"%s seq %d: deliver terminal with no harness-observed recovery", who, seq))
					}
				}
			}
		}
	}
	if tripped > 3 {
		h.violate("flight", fmt.Sprintf(
			"%d flight-recorder violations in total (first 3 detailed)", tripped))
	}
}
