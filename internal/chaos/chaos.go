// Package chaos is a deterministic fault-injection harness for the full
// LBRM topology. A seeded orchestrator drives the paper's deployment —
// sender, primary logger, replicas, per-site secondaries, receivers — under
// the simulator's virtual clock while injecting a reproducible schedule of
// faults: process crashes with total state loss and later restart, site
// partitions (tail-circuit gates), and flaky-link windows (random loss +
// duplication + reordering). After the last fault heals it checks the
// protocol's end-to-end recovery invariants:
//
//   - every live receiver converges to the sender's last sequence number
//     within a bounded horizon (freshness over completeness: abandoned
//     ranges advance the watermark too);
//   - the sender's retention buffer drains to zero;
//   - exactly one acting (non-replica) primary remains among live loggers;
//   - acknowledgement sequence numbers (source acks and replica sync acks)
//     are monotone per node incarnation;
//   - after convergence the network goes quiet — no NACK traffic at all in
//     a trailing window (retry storms and leaked retry loops show up here);
//   - if the primary crashed, failover completed within the analytic bound;
//   - after everything stops, the event queue drains — a timer that
//     re-arms itself past shutdown is a leak.
//
// Every run is reproducible from its seed alone: the same seed yields the
// same fault schedule, the same packet trace (TraceHash), and the same
// verdict. A failing seed IS the bug report.
package chaos

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"time"

	"lbrm"
	"lbrm/internal/wire"
)

// Config parameterizes one chaos run. Zero values get defaults.
type Config struct {
	// Seed determines the topology rng AND the fault schedule.
	Seed int64
	// Topology (defaults: 3 sites × 3 receivers, 2 replicas).
	Sites, ReceiversPerSite, Replicas int
	// Duration is the traffic+fault phase length (default 20s virtual).
	Duration time.Duration
	// SendEvery is the data packet interval (default 150ms).
	SendEvery time.Duration
	// Faults is how many faults to schedule (default 6).
	Faults int
	// CrashPrimary forces one primary crash (plus restart as a cold
	// replica) into the schedule. Requires Replicas ≥ 1.
	CrashPrimary bool
	// DisableCrashes / DisablePartitions / DisableLinkChaos remove a fault
	// class from the random schedule.
	DisableCrashes    bool
	DisablePartitions bool
	DisableLinkChaos  bool
	// ConvergeWithin bounds the post-heal recovery horizon (default 30s).
	ConvergeWithin time.Duration
	// QuiesceWindow is the trailing silence check (default 5s).
	QuiesceWindow time.Duration
	// FailoverTimeout / FailoverWait season the sender (defaults 400ms /
	// 100ms); the failover-latency invariant is derived from them.
	FailoverTimeout time.Duration
	FailoverWait    time.Duration
}

func (c Config) withDefaults() Config {
	if c.Sites == 0 {
		c.Sites = 3
	}
	if c.ReceiversPerSite == 0 {
		c.ReceiversPerSite = 3
	}
	if c.Replicas == 0 {
		c.Replicas = 2
	}
	if c.Duration == 0 {
		c.Duration = 20 * time.Second
	}
	if c.SendEvery == 0 {
		c.SendEvery = 150 * time.Millisecond
	}
	if c.Faults == 0 {
		c.Faults = 6
	}
	if c.ConvergeWithin == 0 {
		c.ConvergeWithin = 30 * time.Second
	}
	if c.QuiesceWindow == 0 {
		c.QuiesceWindow = 5 * time.Second
	}
	if c.FailoverTimeout == 0 {
		c.FailoverTimeout = 400 * time.Millisecond
	}
	if c.FailoverWait == 0 {
		c.FailoverWait = 100 * time.Millisecond
	}
	return c
}

// Fault is one scheduled fault. At/Dur are offsets from the run start.
type Fault struct {
	At, Dur time.Duration
	// Kind is one of crash-receiver, crash-secondary, crash-replica,
	// crash-primary, partition, flaky-link.
	Kind string
	// Site and Idx locate the target where applicable (-1 otherwise).
	Site, Idx int
}

func (f Fault) String() string {
	loc := ""
	if f.Site >= 0 {
		loc = fmt.Sprintf(" site%d", f.Site+1)
	}
	if f.Idx >= 0 {
		loc += fmt.Sprintf("/%d", f.Idx)
	}
	return fmt.Sprintf("t=%v +%v %s%s", f.At, f.Dur, f.Kind, loc)
}

// Violation is one failed invariant.
type Violation struct {
	Name   string
	Detail string
}

func (v Violation) String() string { return v.Name + ": " + v.Detail }

// Result is one chaos run's verdict.
type Result struct {
	Seed       int64
	Schedule   []Fault
	Violations []Violation
	// TraceHash fingerprints every observed link traversal; two runs of
	// the same seed must produce identical hashes.
	TraceHash uint64
	// LastSeq is the final data sequence number sent.
	LastSeq uint64
	// Failovers and Promotions from the protocol's own counters.
	Failovers, Promotions uint64
	// FailoverLatency is crash→Promote (zero if the primary never crashed).
	FailoverLatency time.Duration
	// ConvergeTook is heal→convergence (zero if never converged).
	ConvergeTook time.Duration
	// BackfillSkipped counts sequence numbers declared unrecoverable by a
	// promoted replica (data loss — possible when peers were also faulted).
	BackfillSkipped uint64
}

// OK reports whether every invariant held.
func (r *Result) OK() bool { return len(r.Violations) == 0 }

// Report renders a human-readable run summary.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos seed=%d lastSeq=%d failovers=%d promotions=%d\n",
		r.Seed, r.LastSeq, r.Failovers, r.Promotions)
	for _, f := range r.Schedule {
		fmt.Fprintf(&b, "  fault: %s\n", f)
	}
	if r.FailoverLatency > 0 {
		fmt.Fprintf(&b, "  failover latency: %v\n", r.FailoverLatency)
	}
	if r.ConvergeTook > 0 {
		fmt.Fprintf(&b, "  converged in: %v\n", r.ConvergeTook)
	}
	if r.BackfillSkipped > 0 {
		fmt.Fprintf(&b, "  backfill skipped: %d seqs\n", r.BackfillSkipped)
	}
	fmt.Fprintf(&b, "  trace hash: %016x\n", r.TraceHash)
	if r.OK() {
		b.WriteString("  PASS: all invariants held\n")
	} else {
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  FAIL %s\n", v)
		}
	}
	return b.String()
}

// ackKey identifies one acknowledgement stream for monotonicity tracking.
type ackKey struct {
	node int
	typ  wire.Type
	src  wire.SourceID
	grp  wire.GroupID
}

// harness owns one run's mutable state.
type harness struct {
	cfg Config
	tb  *lbrm.Testbed
	res *Result

	key    lbrm.StreamKey
	logKey lbrm.LogStreamKey

	// Current handler incarnations (replaced on restart).
	receivers   [][]*lbrm.Receiver
	secondaries []*lbrm.SecondaryLogger
	// primaries[0] is the original primary's node; 1.. are replicas.
	primaries    []*lbrm.PrimaryLogger
	primaryNodes []*lbrm.SimNode

	// Every handler ever created, for shutdown.
	stoppables []interface{ Stop() }

	// Tap state.
	hash           uint64
	lastAck        map[ackKey]uint64
	primaryCrashAt time.Time
	promoteAt      time.Time
}

// Run executes one chaos run and returns its verdict. The only error cases
// are construction failures; invariant violations are reported in the
// Result, not as errors.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.CrashPrimary && cfg.Replicas < 1 {
		return nil, fmt.Errorf("chaos: CrashPrimary requires at least one replica")
	}
	schedule := buildSchedule(cfg)

	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed:             cfg.Seed,
		Sites:            cfg.Sites,
		ReceiversPerSite: cfg.ReceiversPerSite,
		Replicas:         cfg.Replicas,
		Sender: lbrm.SenderConfig{
			Heartbeat:       lbrm.HeartbeatParams{HMin: 50 * time.Millisecond, HMax: 400 * time.Millisecond, Backoff: 2},
			FailoverTimeout: cfg.FailoverTimeout,
			FailoverWait:    cfg.FailoverWait,
		},
		Secondary: lbrm.SecondaryConfig{
			NackDelay:      10 * time.Millisecond,
			RequestTimeout: 200 * time.Millisecond,
		},
		Receiver: lbrm.ReceiverConfig{
			NackDelay:      10 * time.Millisecond,
			RequestTimeout: 200 * time.Millisecond,
		},
	})
	if err != nil {
		return nil, err
	}

	h := &harness{
		cfg:     cfg,
		tb:      tb,
		res:     &Result{Seed: cfg.Seed, Schedule: schedule},
		key:     lbrm.StreamKey{Source: tb.Source, Group: tb.Group},
		logKey:  lbrm.LogStreamKey{Source: tb.Source, Group: tb.Group},
		lastAck: make(map[ackKey]uint64),
	}
	for _, ts := range tb.Sites {
		h.receivers = append(h.receivers, append([]*lbrm.Receiver(nil), ts.Receivers...))
		h.secondaries = append(h.secondaries, ts.Secondary)
	}
	h.primaries = append([]*lbrm.PrimaryLogger{tb.Primary}, tb.Replicas...)
	h.primaryNodes = append([]*lbrm.SimNode{tb.PrimaryNode}, tb.ReplicaNodes...)
	h.stoppables = append(h.stoppables, tb.Sender, tb.Primary)
	for _, r := range tb.Replicas {
		h.stoppables = append(h.stoppables, r)
	}
	for _, ts := range tb.Sites {
		h.stoppables = append(h.stoppables, ts.Secondary)
		for _, r := range ts.Receivers {
			h.stoppables = append(h.stoppables, r)
		}
	}
	tb.Net.SetTap(h.tap)

	clk := tb.Net.Clock()
	for _, f := range schedule {
		f := f
		clk.AfterFunc(f.At, func() { h.applyFault(f) })
	}

	// Traffic phase: steady low-rate data through the whole fault window.
	for t := time.Duration(0); t < cfg.Duration; t += cfg.SendEvery {
		seq, err := tb.Send([]byte("chaos-payload"))
		if err != nil {
			return nil, err
		}
		h.res.LastSeq = seq
		tb.Run(cfg.SendEvery)
	}

	// Convergence phase: every fault has healed (buildSchedule guarantees
	// At+Dur < Duration); poll until the invariant targets are met.
	healAt := clk.Now()
	const poll = 100 * time.Millisecond
	converged := false
	for el := time.Duration(0); el < cfg.ConvergeWithin; el += poll {
		tb.Run(poll)
		if h.converged() {
			converged = true
			h.res.ConvergeTook = clk.Now().Sub(healAt)
			break
		}
	}
	if !converged {
		h.violate("convergence", h.lagReport())
	} else {
		// Quiesce: after convergence, recovery traffic must dry up. Cold
		// restarted servers may still be draining a terminating fetch
		// schedule (bounded by MaxRetries), so allow a few windows for the
		// tail — but a leaked retry loop or synchronized retry storm never
		// produces a silent window.
		before := h.nackCount()
		quiet := false
		for i := 0; i < 6 && !quiet; i++ {
			tb.Run(cfg.QuiesceWindow)
			after := h.nackCount()
			quiet = after == before
			before = after
		}
		if !quiet {
			h.violate("quiesce", fmt.Sprintf("NACK traffic still flowing %v after convergence",
				6*cfg.QuiesceWindow))
		}
	}

	h.checkFinalInvariants()

	// Shutdown: stop every handler ever created and drain. Anything still
	// pending after the drain re-armed itself past shutdown — a leak.
	for _, s := range h.stoppables {
		s.Stop()
	}
	tb.Run(30 * time.Second)
	if n := clk.Len(); n != 0 {
		h.violate("timer-leak", fmt.Sprintf("%d events still pending after shutdown drain", n))
	}

	h.res.TraceHash = h.hash
	h.res.Failovers = h.tb.Sender.Stats().Failovers
	for _, p := range h.primaries {
		h.res.Promotions += p.Stats().Promotions
		h.res.BackfillSkipped += p.Stats().BackfillSkipped
	}
	return h.res, nil
}

func (h *harness) violate(name, detail string) {
	h.res.Violations = append(h.res.Violations, Violation{Name: name, Detail: detail})
}

// buildSchedule derives the fault plan purely from the seed. The fault rng
// is separate from the network's, so the schedule is a function of the
// config alone.
func buildSchedule(cfg Config) []Fault {
	rng := rand.New(rand.NewSource(cfg.Seed*0x9E3779B9 + 0x7F4A7C15))
	var kinds []string
	if !cfg.DisableCrashes {
		kinds = append(kinds, "crash-receiver", "crash-secondary")
		if cfg.Replicas > 0 {
			kinds = append(kinds, "crash-replica")
		}
	}
	if !cfg.DisablePartitions {
		kinds = append(kinds, "partition")
	}
	if !cfg.DisableLinkChaos {
		kinds = append(kinds, "flaky-link")
	}
	var out []Fault
	used := make(map[string]bool)
	target := func(f Fault) string {
		// Partition and flaky-link contend for the same tail links: treat
		// them as one target class per site so heals cannot clobber each
		// other's loss models.
		if f.Kind == "partition" || f.Kind == "flaky-link" {
			return fmt.Sprintf("link/%d", f.Site)
		}
		return fmt.Sprintf("%s/%d/%d", f.Kind, f.Site, f.Idx)
	}
	draw := func() (Fault, bool) {
		if len(kinds) == 0 {
			return Fault{}, false
		}
		f := Fault{
			Kind: kinds[rng.Intn(len(kinds))],
			At:   cfg.Duration/10 + time.Duration(rng.Int63n(int64(cfg.Duration*6/10))),
			Dur:  200*time.Millisecond + time.Duration(rng.Int63n(int64(1300*time.Millisecond))),
			Site: -1, Idx: -1,
		}
		switch f.Kind {
		case "crash-receiver":
			f.Site = rng.Intn(cfg.Sites)
			f.Idx = rng.Intn(cfg.ReceiversPerSite)
		case "crash-secondary", "partition", "flaky-link":
			f.Site = rng.Intn(cfg.Sites)
		case "crash-replica":
			f.Idx = rng.Intn(cfg.Replicas)
		}
		return f, true
	}
	// One fault per target keeps heals unambiguous, which also bounds the
	// schedule by the number of distinct targets: stop once draws keep
	// landing on used targets (narrow configs can exhaust them).
	for misses := 0; len(out) < cfg.Faults && misses < 64; {
		f, ok := draw()
		if !ok {
			break
		}
		if used[target(f)] {
			misses++
			continue
		}
		used[target(f)] = true
		out = append(out, f)
	}
	if cfg.CrashPrimary {
		out = append(out, Fault{
			Kind: "crash-primary",
			At:   cfg.Duration * 2 / 5,
			Dur:  1500 * time.Millisecond,
			Site: -1, Idx: -1,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// applyFault injects one fault and arms its heal.
func (h *harness) applyFault(f Fault) {
	clk := h.tb.Net.Clock()
	switch f.Kind {
	case "crash-receiver":
		node := h.tb.Sites[f.Site].ReceiverNodes[f.Idx]
		h.crash(node)
		clk.AfterFunc(f.Dur, func() {
			rcv := lbrm.NewReceiver(h.tb.Sites[f.Site].ReceiverCfgs[f.Idx])
			h.receivers[f.Site][f.Idx] = rcv
			h.stoppables = append(h.stoppables, rcv)
			node.Restart(rcv)
		})
	case "crash-secondary":
		node := h.tb.Sites[f.Site].SecondaryNode
		h.crash(node)
		clk.AfterFunc(f.Dur, func() {
			sec := lbrm.NewSecondaryLogger(h.tb.Sites[f.Site].SecondaryCfg)
			h.secondaries[f.Site] = sec
			h.stoppables = append(h.stoppables, sec)
			node.Restart(sec)
		})
	case "crash-replica":
		node := h.tb.ReplicaNodes[f.Idx]
		h.crash(node)
		clk.AfterFunc(f.Dur, func() {
			rep := lbrm.NewPrimaryLogger(h.tb.ReplicaCfgs[f.Idx])
			h.primaries[1+f.Idx] = rep
			h.stoppables = append(h.stoppables, rep)
			node.Restart(rep)
		})
	case "crash-primary":
		node := h.tb.PrimaryNode
		h.primaryCrashAt = clk.Now()
		h.crash(node)
		clk.AfterFunc(f.Dur, func() {
			// A rebooted primary lost everything, including the knowledge
			// that it was primary: it comes back as a cold replica (the
			// sender has failed over — or will — to a live replica).
			rcfg := h.tb.PrimaryCfg
			rcfg.Replica = true
			rcfg.Replicas = nil
			rcfg.Peers = append([]lbrm.Addr(nil), h.tb.PrimaryCfg.Replicas...)
			rep := lbrm.NewPrimaryLogger(rcfg)
			h.primaries[0] = rep
			h.stoppables = append(h.stoppables, rep)
			node.Restart(rep)
		})
	case "partition":
		site := h.tb.Sites[f.Site].Site
		gate := &lbrm.Gate{Down: true}
		site.TailUp().SetLoss(gate)
		site.TailDown().SetLoss(gate)
		clk.AfterFunc(f.Dur, func() { gate.Down = false })
	case "flaky-link":
		site := h.tb.Sites[f.Site].Site
		down := site.TailDown()
		down.SetLoss(lbrm.Compose(
			lbrm.Bernoulli{P: 0.3},
			lbrm.Reorder{P: 0.25, MaxDelay: 20 * time.Millisecond},
			lbrm.Duplicate{P: 0.1, Lag: 2 * time.Millisecond},
		))
		clk.AfterFunc(f.Dur, func() { down.SetLoss(nil) })
	}
}

// crash takes a node down and forgets its acknowledgement watermarks (a new
// incarnation legitimately restarts its ack sequence).
func (h *harness) crash(node *lbrm.SimNode) {
	node.Crash()
	id := int(node.ID())
	for k := range h.lastAck {
		if k.node == id {
			delete(h.lastAck, k)
		}
	}
}

// tap observes every link traversal: it folds the event into the trace
// hash, tracks ack monotonicity, and timestamps the failover Promote.
func (h *harness) tap(ev lbrm.TapEvent) {
	f := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		f.Write(buf[:])
	}
	put(h.hash)
	put(uint64(ev.Time.UnixNano()))
	put(uint64(int64(ev.From)))
	put(uint64(int64(ev.To)))
	put(uint64(ev.Size))
	if ev.Dropped {
		put(1)
	} else {
		put(0)
	}
	h.hash = f.Sum64()

	var p wire.Packet
	if p.Unmarshal(ev.Data) != nil {
		return
	}
	if ev.Dropped {
		return
	}
	switch p.Type {
	case wire.TypeSourceAck, wire.TypeLogSyncAck:
		k := ackKey{node: int(ev.From), typ: p.Type, src: p.Source, grp: p.Group}
		if last, ok := h.lastAck[k]; ok && p.Seq < last {
			h.violate("ack-monotonicity", fmt.Sprintf(
				"node %d %s regressed %d -> %d", ev.From, p.Type, last, p.Seq))
		} else {
			h.lastAck[k] = p.Seq
		}
	case wire.TypePromote:
		if h.promoteAt.IsZero() && !h.primaryCrashAt.IsZero() {
			h.promoteAt = ev.Time
		}
	}
}

// converged reports whether every live receiver has resolved everything up
// to the last sent sequence number and the sender's buffer has drained.
func (h *harness) converged() bool {
	if h.tb.Sender.Retained() != 0 {
		return false
	}
	for s, ts := range h.tb.Sites {
		for i, node := range ts.ReceiverNodes {
			if node.Crashed() {
				continue
			}
			if h.receivers[s][i].Contiguous(h.key) < h.res.LastSeq {
				return false
			}
		}
	}
	return true
}

// lagReport names the convergence stragglers.
func (h *harness) lagReport() string {
	var lags []string
	if n := h.tb.Sender.Retained(); n != 0 {
		lags = append(lags, fmt.Sprintf("sender retains %d", n))
	}
	for s, ts := range h.tb.Sites {
		for i, node := range ts.ReceiverNodes {
			if node.Crashed() {
				continue
			}
			if got := h.receivers[s][i].Contiguous(h.key); got < h.res.LastSeq {
				lags = append(lags, fmt.Sprintf("site%d/rcv%d at %d/%d", s+1, i, got, h.res.LastSeq))
			}
		}
	}
	return strings.Join(lags, "; ")
}

// nackCount sums NACK traffic across the deployment.
func (h *harness) nackCount() uint64 {
	var n uint64
	for s := range h.receivers {
		for _, r := range h.receivers[s] {
			n += r.Stats().NacksSent
		}
		if sec := h.secondaries[s]; sec != nil {
			n += sec.Stats().NacksToPrimary
		}
	}
	for _, p := range h.primaries {
		n += p.Stats().BackfillNacks
	}
	return n
}

// checkFinalInvariants runs the post-convergence structural checks.
func (h *harness) checkFinalInvariants() {
	// Exactly one acting primary among live logging servers.
	acting := 0
	for i, node := range h.primaryNodes {
		if node.Crashed() {
			continue
		}
		if !h.primaries[i].IsReplica() {
			acting++
		}
	}
	if acting != 1 {
		h.violate("single-primary", fmt.Sprintf("%d acting primaries among live loggers", acting))
	}
	// Failover latency bound: detection needs backlog (≤ SendEvery old)
	// aged past FailoverTimeout, observed by a jittered check firing at
	// ≤ 1.25×FailoverTimeout intervals; then one probe round (FailoverWait)
	// plus source-site RTT slack.
	if !h.primaryCrashAt.IsZero() {
		bound := h.cfg.FailoverTimeout*5/2 + h.cfg.FailoverWait + h.cfg.SendEvery + 250*time.Millisecond
		if h.promoteAt.IsZero() {
			h.violate("failover", "primary crashed but no Promote was ever sent")
		} else if lat := h.promoteAt.Sub(h.primaryCrashAt); lat > bound {
			h.violate("failover", fmt.Sprintf("crash->promote took %v, bound %v", lat, bound))
		} else {
			h.res.FailoverLatency = lat
		}
	}
}
