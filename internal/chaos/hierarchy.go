package chaos

import (
	"fmt"
	"math/rand"
	"sort"
)

// Hierarchy schedule classes. When Config.Regions > 0 the harness builds
// a three-tier logger tree (site secondaries under regional loggers under
// the primary) and runs one of three fault classes against the middle
// tier, always composed with a down-outage on one member site so there is
// recovery demand in flight while the tier is degraded:
//
//   - regional-crash: one regional logger dies mid-recovery and restarts
//     with the next tree epoch. Its children must re-home to the sibling
//     regional, keep recovering there, and follow the reborn logger's
//     epoch-fenced announcement back.
//   - tier-partition: one regional logger is isolated both ways for the
//     window, then healed without restarting. Children must degrade to
//     the sibling — the lowest live tier — and never park on the primary.
//   - cascade: the faulted site's secondary AND its regional crash
//     together. Receivers must walk both dead tiers in order and reach
//     the primary with NACKs stamped at the primary's global tier.
//
// The invariants enforced after every run (DESIGN.md §13):
//
//   - tier-skip (checked live in the wire tap): every NACK arriving at
//     the primary's host is stamped treeDepth — a lower stamp means some
//     live tier was skipped on the way up;
//   - rehome / rehome-converge: the faulted site's secondary provably
//     left its dead parent and, per class, ended where the protocol says
//     it must (back home after a crash-restart, on a sibling tier after
//     a partition);
//   - tier-walk (cascade): recovery pressure reached the primary at all;
//   - hierarchy-no-skip / hierarchy-abandoned: no acked loss across
//     re-parenting — every receiver delivered every sequence the sender
//     sent and no recovery range was ever abandoned (hierarchy schedules
//     never crash receivers, so the delivery ledger is complete).
const (
	hierFaultRegionalCrash = "regional-crash"
	hierFaultTierPartition = "tier-partition"
	hierFaultCascade       = "cascade"
)

// treeDepth is the primary's global tier in the harness's three-tier
// deployment: site secondary = 0, regional = 1, primary = 2.
const treeDepth = 2

// hierarchySchedule derives the hierarchy fault plan from the seed: the
// configured — or seed-drawn — fault class against one regional, plus a
// short down-outage on one of that region's sites to put recovery demand
// on the degraded tier. Offsets are fractions of Duration so the faulted
// window scales with the run: the outage opens just after the tier fault
// lands, the regional restart (~55%) leaves the convergence phase free to
// observe the re-parent protocol pulling children back.
func hierarchySchedule(cfg Config, rng *rand.Rand) []Fault {
	kind := cfg.HierarchyFault
	if kind == "" {
		kind = [...]string{hierFaultRegionalCrash, hierFaultTierPartition,
			hierFaultCascade}[rng.Intn(3)]
	}
	region := rng.Intn(cfg.Regions)
	var members []int
	for s := region; s < cfg.Sites; s += cfg.Regions {
		members = append(members, s)
	}
	site := members[rng.Intn(len(members))]

	d := cfg.Duration
	out := []Fault{{Kind: "down-outage", At: d * 32 / 100, Dur: d * 3 / 100,
		Site: site, Idx: -1}}
	switch kind {
	case hierFaultRegionalCrash:
		out = append(out, Fault{Kind: "crash-regional",
			At: d * 30 / 100, Dur: d * 25 / 100, Site: -1, Idx: region})
	case hierFaultTierPartition:
		out = append(out, Fault{Kind: "partition-regional",
			At: d * 30 / 100, Dur: d * 25 / 100, Site: -1, Idx: region})
	case hierFaultCascade:
		out = append(out,
			Fault{Kind: "crash-regional", At: d * 30 / 100, Dur: d * 25 / 100,
				Site: -1, Idx: region},
			Fault{Kind: "crash-secondary", At: d * 31 / 100, Dur: d * 20 / 100,
				Site: site, Idx: -1})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// checkHierarchyInvariants enforces the tree-degradation invariants after
// a hierarchy-schedule run (tier-skip is enforced live, in the tap).
func (h *harness) checkHierarchyInvariants() {
	if h.cfg.Regions <= 0 {
		return
	}
	var crashed, partitioned, cascaded bool
	region, site := -1, -1
	for _, f := range h.res.Schedule {
		switch f.Kind {
		case "crash-regional":
			crashed, region = true, f.Idx
		case "partition-regional":
			partitioned, region = true, f.Idx
		case "crash-secondary":
			cascaded = true
		case "down-outage":
			site = f.Site
		}
	}
	if site < 0 || region < 0 {
		return // "none"-style schedule: nothing to prove
	}

	switch {
	case cascaded:
		// Both lower tiers were dead while the site had demand: receivers
		// must have walked the chain all the way to the primary (every
		// such NACK's tier 2 stamp was already checked in the tap).
		if h.priNacks == 0 {
			h.violate("tier-walk",
				"cascade run, but no NACK ever reached the primary's host")
		}
	case crashed:
		// The faulted site's secondary must have re-homed off its dead
		// parent and then followed the reborn regional's announcement
		// (tree epoch 2) back: the sibling detour is observable in
		// Rehomes, the return in ReparentsFollowed and the final parent.
		st := h.secondaries[site].Stats()
		if st.Rehomes == 0 {
			h.violate("rehome", fmt.Sprintf(
				"site%d secondary never re-homed off its crashed regional (fetches=%d)",
				site+1, st.NacksToPrimary))
		}
		if st.ReparentsFollowed == 0 {
			h.violate("rehome-converge", fmt.Sprintf(
				"site%d secondary never followed the reborn regional's announcement", site+1))
		}
		addr, tier := h.secondaries[site].Parent()
		home := h.tb.Regions[region].LoggerNode.Addr()
		if addr != home || tier != 1 {
			h.violate("rehome-converge", fmt.Sprintf(
				"site%d secondary parked on %v tier %d, want reborn regional %v tier 1",
				site+1, addr, tier, home))
		}
	case partitioned:
		// The regional healed without restarting, so no announcement pulls
		// children back: the re-homed secondary must have stopped at the
		// sibling — the lowest live tier — and never parked on the primary.
		st := h.secondaries[site].Stats()
		if st.Rehomes == 0 {
			h.violate("rehome", fmt.Sprintf(
				"site%d secondary never re-homed off its partitioned regional", site+1))
		}
		addr, tier := h.secondaries[site].Parent()
		if tier > 1 {
			h.violate("rehome-converge", fmt.Sprintf(
				"site%d secondary degraded past the live sibling tier to %v tier %d",
				site+1, addr, tier))
		}
	}

	// No acked loss across re-parenting: hierarchy schedules never crash
	// receivers, so the OnData ledger is complete — every receiver must
	// hold every sequence, and none may have abandoned a recovery range.
	for s := range h.delivered {
		for j := range h.delivered[s] {
			var missing []uint64
			for seq := uint64(1); seq <= h.res.LastSeq && len(missing) < 8; seq++ {
				if !h.delivered[s][j][seq] {
					missing = append(missing, seq)
				}
			}
			if len(missing) > 0 {
				h.violate("hierarchy-no-skip", fmt.Sprintf(
					"site%d/rcv%d never delivered seqs %v (lastSeq %d)",
					s+1, j, missing, h.res.LastSeq))
			}
		}
	}
	var abandoned uint64
	for s := range h.receivers {
		for _, r := range h.receivers[s] {
			abandoned += r.Stats().RangesAbandoned
		}
	}
	if abandoned > 0 {
		h.violate("hierarchy-abandoned", fmt.Sprintf(
			"%d recovery ranges abandoned across receivers", abandoned))
	}
}
