// Scenario matrix: adversarial group dynamics beyond fault injection.
//
// Where chaos.Run drives one testbed network through crash/partition
// schedules, RunScenario drives a multi-island fleet (netsim.Cluster)
// through the group-dynamics stress cases the SRM retrospective singles
// out: flash-crowd joins backfilling from the log store, a crying-baby
// site whose persistent loss must stay contained (§6), diurnal load
// curves, and mixed workloads sharing one fleet. Every class carries
// seeded invariants, and every run is reproducible and execution-mode
// independent: the same seed yields the same FNV trace hash whether the
// islands run sequentially or one goroutine each.
package chaos

import (
	"fmt"
	"math"
	"sort"
	"time"

	"lbrm"
	"lbrm/internal/netsim"
	"lbrm/internal/transport"
)

// ScenarioClass names one scenario family.
type ScenarioClass string

const (
	// ScenarioBroadcast is the steady-state baseline: one DIS-style
	// stream, fixed rate, light backbone loss.
	ScenarioBroadcast ScenarioClass = "broadcast"
	// ScenarioFlashCrowd adds a join wave: extra receivers attach
	// mid-stream and must converge from their join floor, recovering
	// post-join losses from the log store (late joins do not fetch
	// history — freshness over completeness).
	ScenarioFlashCrowd ScenarioClass = "flash-crowd"
	// ScenarioCryingBaby gives one site a persistently lossy tail circuit
	// (the paper's §6 comparison): its receivers recover continuously
	// while every other site must see zero recovery traffic.
	ScenarioCryingBaby ScenarioClass = "crying-baby"
	// ScenarioDiurnal modulates the send rate along a deterministic
	// day-curve, sweeping the heartbeat and NACK machinery across load
	// levels in one run.
	ScenarioDiurnal ScenarioClass = "diurnal"
	// ScenarioMixed runs three streams on one fleet: steady DIS state,
	// a bursty ticker, and a sparse cache-invalidation feed.
	ScenarioMixed ScenarioClass = "mixed"
)

// ScenarioClasses lists every class, in matrix order.
func ScenarioClasses() []ScenarioClass {
	return []ScenarioClass{ScenarioBroadcast, ScenarioFlashCrowd,
		ScenarioCryingBaby, ScenarioDiurnal, ScenarioMixed}
}

// ScenarioConfig parameterizes one scenario run. Zero values get defaults.
type ScenarioConfig struct {
	Class ScenarioClass
	// Seed makes the run reproducible.
	Seed int64
	// Islands is the number of receiver islands; the source site gets its
	// own island 0 (default 3).
	Islands int
	// SitesPerIsland is the number of receiver sites per island (default 2).
	SitesPerIsland int
	// ReceiversPerSite is the initial receiver population per site
	// (default 2).
	ReceiversPerSite int
	// Joiners is the flash-crowd wave size per site (default
	// ReceiversPerSite, doubling the population mid-run).
	Joiners int
	// Duration is the simulated run length (default 24s). Data stops at
	// 70% of it; the tail is the convergence horizon.
	Duration time.Duration
	// Interval is the base inter-packet gap (default 60ms).
	Interval time.Duration
	// Parallel runs islands one goroutine each; sequential otherwise.
	// The trace is identical either way.
	Parallel bool
	// Bulk enables bulk leaf delivery on every island.
	Bulk bool
	// Payload is the data packet payload size (default 64).
	Payload int
}

func (c ScenarioConfig) withDefaults() ScenarioConfig {
	if c.Class == "" {
		c.Class = ScenarioBroadcast
	}
	if c.Islands == 0 {
		c.Islands = 3
	}
	if c.SitesPerIsland == 0 {
		c.SitesPerIsland = 2
	}
	if c.ReceiversPerSite == 0 {
		c.ReceiversPerSite = 2
	}
	if c.Joiners == 0 {
		c.Joiners = c.ReceiversPerSite
	}
	if c.Duration == 0 {
		c.Duration = 24 * time.Second
	}
	if c.Interval == 0 {
		c.Interval = 60 * time.Millisecond
	}
	if c.Payload == 0 {
		c.Payload = 64
	}
	return c
}

// ScenarioResult is the verdict plus the protocol numbers of one run.
type ScenarioResult struct {
	Class ScenarioClass
	Seed  int64

	// TraceHash fingerprints all traffic (island-local and backbone).
	TraceHash uint64
	// Events is the engine-independent logical event count; Elapsed the
	// wall-clock run time (Events/Elapsed is the sim events/sec headline).
	Events  uint64
	Elapsed time.Duration

	Deliveries uint64
	// LastSeq is the final sequence number per stream.
	LastSeq []uint64
	// Receivers counts the initial population; Joiners the flash wave.
	Receivers int
	Joiners   int
	// Recovered / NacksSent aggregate receiver stats fleet-wide.
	Recovered uint64
	NacksSent uint64
	// BackfillP50/P99 are recovery-latency percentiles (detection →
	// delivery) over the class's population of interest: the join wave
	// for flash-crowd, all receivers otherwise. Zero when nothing was
	// recovered.
	BackfillP50, BackfillP99 time.Duration

	Violations []Violation
}

// OK reports whether every invariant held.
func (r *ScenarioResult) OK() bool { return len(r.Violations) == 0 }

// Report renders a one-run summary.
func (r *ScenarioResult) Report() string {
	s := fmt.Sprintf("scenario %s seed=%d: %d receivers (+%d joiners), lastSeq=%v, %d deliveries, %d recovered, %d nacks, backfill p50=%v p99=%v, %d logical events in %v, trace %016x",
		r.Class, r.Seed, r.Receivers, r.Joiners, r.LastSeq, r.Deliveries,
		r.Recovered, r.NacksSent, r.BackfillP50, r.BackfillP99, r.Events,
		r.Elapsed.Round(time.Millisecond), r.TraceHash)
	for _, v := range r.Violations {
		s += "\n  VIOLATION " + v.String()
	}
	return s
}

// streamSpec is one sender/primary pair on the fleet.
type streamSpec struct {
	name   string
	source lbrm.SourceID
	group  lbrm.GroupID
}

func (s streamSpec) key() lbrm.StreamKey {
	return lbrm.StreamKey{Source: s.source, Group: s.group}
}

// fleetReceiver is one receiver plus its placement.
type fleetReceiver struct {
	rcv    *lbrm.Receiver
	stream int
	site   int
	joiner bool
}

// scenarioFleet is a multi-island LBRM deployment: island 0 hosts the
// senders and primaries; receiver sites round-robin over islands 1..N.
type scenarioFleet struct {
	cfg     ScenarioConfig
	cluster *netsim.Cluster
	streams []streamSpec
	senders []*lbrm.Sender

	sites     []*netsim.Site
	siteIsl   []int
	receivers []*fleetReceiver
	// joined collects the flash wave's receivers; written by island-local
	// join events, read only after Run (the barrier orders the accesses).
	joined []*fleetReceiver

	cryingSite int
	violations []Violation
}

// violate records an invariant violation.
func (f *scenarioFleet) violate(name, detail string) {
	f.violations = append(f.violations, Violation{Name: name, Detail: detail})
}

func scenarioStreams(class ScenarioClass) []streamSpec {
	if class == ScenarioMixed {
		return []streamSpec{
			{name: "dis", source: 1, group: 1},
			{name: "ticker", source: 2, group: 2},
			{name: "inval", source: 3, group: 3},
		}
	}
	return []streamSpec{{name: "dis", source: 1, group: 1}}
}

// buildFleet wires the deployment onto a cluster but does not start it.
func buildFleet(cfg ScenarioConfig) (*scenarioFleet, error) {
	f := &scenarioFleet{cfg: cfg, streams: scenarioStreams(cfg.Class), cryingSite: -1}

	// NodeID stride: the source island holds a sender+primary pair per
	// stream; each receiver island holds its sites' secondaries, the
	// initial receivers, and (flash-crowd) the pre-allocated join wave.
	sitesPerIsland := cfg.SitesPerIsland
	perSite := 1 + cfg.ReceiversPerSite
	if cfg.Class == ScenarioFlashCrowd {
		perSite += cfg.Joiners
	}
	stride := sitesPerIsland*perSite + 2
	if s := 2 * len(f.streams); s+2 > stride {
		stride = s + 2
	}
	f.cluster = netsim.NewCluster(cfg.Seed, stride)

	cross := func(island int) netsim.LinkConfig {
		lc := netsim.LinkConfig{
			Delay:       8 * time.Millisecond,
			TTLRequired: netsim.RegionBoundaryTTL,
		}
		// Light independent backbone loss into each receiver island — a
		// correlated whole-island gap per drop, recovered through the log
		// store. The crying-baby class keeps the backbone clean so that
		// its containment invariant (zero recovery outside the crying
		// site) is exact.
		if island > 0 && cfg.Class != ScenarioCryingBaby {
			lc.Loss = &netsim.Bernoulli{P: 0.03}
		}
		return lc
	}
	islands := make([]*netsim.Island, 0, cfg.Islands+1)
	for k := 0; k <= cfg.Islands; k++ {
		up := netsim.LinkConfig{Delay: 8 * time.Millisecond, TTLRequired: netsim.RegionBoundaryTTL}
		isl, err := f.cluster.AddIsland(up, cross(k))
		if err != nil {
			return nil, err
		}
		islands = append(islands, isl)
	}

	// Source island: one sender + primary pair per stream, one site.
	srcSite := islands[0].Net.NewSite(netsim.SiteParams{Name: "source-site"})
	hb := lbrm.HeartbeatParams{HMin: 50 * time.Millisecond, HMax: 400 * time.Millisecond, Backoff: 2}
	primaryAddr := make([]transport.Addr, len(f.streams))
	for i, st := range f.streams {
		pNode := srcSite.NewHost("primary-"+st.name, nil)
		pNode.SetHandler(lbrm.NewPrimaryLogger(lbrm.PrimaryConfig{Group: st.group}))
		primaryAddr[i] = pNode.Addr()
		sender, err := lbrm.NewSender(lbrm.SenderConfig{
			Source:    st.source,
			Group:     st.group,
			Heartbeat: hb,
			Primary:   primaryAddr[i],
		})
		if err != nil {
			return nil, err
		}
		srcSite.NewHost("sender-"+st.name, sender)
		f.senders = append(f.senders, sender)
	}

	// Receiver sites, round-robin over islands 1..N. The site secondary
	// logs the primary stream; extra mixed-workload streams recover
	// straight from their primaries (ticker and invalidation feeds do not
	// rate a per-site log).
	newReceiverCfg := func(stream int) lbrm.ReceiverConfig {
		return lbrm.ReceiverConfig{
			Group:              f.streams[stream].group,
			Heartbeat:          hb,
			Primary:            primaryAddr[stream],
			NackDelay:          10 * time.Millisecond,
			RequestTimeout:     200 * time.Millisecond,
			TrackRecoveryTimes: true,
		}
	}
	totalSites := cfg.Islands * cfg.SitesPerIsland
	for s := 0; s < totalSites; s++ {
		k := 1 + s%cfg.Islands
		isl := islands[k]
		site := isl.Net.NewSite(netsim.SiteParams{Name: fmt.Sprintf("site%d", s+1)})
		f.sites = append(f.sites, site)
		f.siteIsl = append(f.siteIsl, k)

		secNode := site.NewHost(fmt.Sprintf("site%d/logger", s+1), nil)
		secNode.SetHandler(lbrm.NewSecondaryLogger(lbrm.SecondaryConfig{
			Group:          f.streams[0].group,
			Primary:        primaryAddr[0],
			NackDelay:      10 * time.Millisecond,
			RequestTimeout: 200 * time.Millisecond,
		}))

		for j := 0; j < cfg.ReceiversPerSite; j++ {
			stream := j % len(f.streams)
			rcfg := newReceiverCfg(stream)
			if stream == 0 {
				rcfg.Secondary = secNode.Addr()
			}
			rcv := lbrm.NewReceiver(rcfg)
			site.NewHost(fmt.Sprintf("site%d/rcv%d", s+1, j), rcv)
			f.receivers = append(f.receivers, &fleetReceiver{rcv: rcv, stream: stream, site: s})
		}

		if cfg.Class == ScenarioFlashCrowd {
			// The join wave's nodes exist from the start (addresses are
			// fixed at build time) but get their handlers — and join the
			// group — mid-run, island-locally, so the attach is identical
			// under sequential and parallel execution.
			secAddr := secNode.Addr()
			for j := 0; j < cfg.Joiners; j++ {
				node := site.NewHost(fmt.Sprintf("site%d/joiner%d", s+1, j), nil)
				fr := &fleetReceiver{stream: 0, site: s, joiner: true}
				f.joined = append(f.joined, fr)
				joinAt := cfg.Duration * 4 / 10
				isl.Net.Clock().AfterFunc(joinAt, func() {
					rcfg := newReceiverCfg(0)
					rcfg.Secondary = secAddr
					fr.rcv = lbrm.NewReceiver(rcfg)
					node.SetHandler(fr.rcv)
				})
			}
		}
	}
	if cfg.Class == ScenarioCryingBaby {
		f.cryingSite = 0
		site := f.sites[0]
		isl := islands[f.siteIsl[0]]
		// Persistent 25% tail loss from 10% to 60% of the run, scheduled
		// on the owning island's clock (cluster links may only be mutated
		// at barriers; island-internal links only by their own island).
		var heal func()
		isl.Net.Clock().AfterFunc(cfg.Duration/10, func() {
			heal = site.TailDown().PushLoss(&netsim.Bernoulli{P: 0.25})
		})
		isl.Net.Clock().AfterFunc(cfg.Duration*6/10, func() {
			if heal != nil {
				heal()
			}
		})
	}
	return f, nil
}

// scheduleSenders installs the per-class send drivers on island 0's clock.
// Data stops at 70% of the duration; heartbeats continue so the tail is a
// pure convergence window.
func (f *scenarioFleet) scheduleSenders(payload []byte) {
	cfg := f.cfg
	clk := f.cluster.Island(0).Net.Clock()
	epoch := clk.Now()
	dataEnd := epoch.Add(cfg.Duration * 7 / 10)

	send := func(stream int) {
		if _, err := f.senders[stream].Send(payload); err != nil {
			f.violate("send", fmt.Sprintf("stream %s: %v", f.streams[stream].name, err))
		}
	}
	// steady schedules a self-rescheduling tick whose gap comes from gap().
	steady := func(stream int, first time.Duration, gap func(elapsed time.Duration) time.Duration) {
		var tick func()
		tick = func() {
			if clk.Now().After(dataEnd) {
				return
			}
			send(stream)
			clk.AfterFunc(gap(clk.Now().Sub(epoch)), tick)
		}
		clk.AfterFunc(first, tick)
	}

	fixed := func(time.Duration) time.Duration { return cfg.Interval }
	switch cfg.Class {
	case ScenarioDiurnal:
		// Load curve λ(t) = 0.25 + 0.75·sin²(πt/T): a quiet night, a busy
		// midday peak at 4× the trough rate, two full cycles per run.
		period := cfg.Duration / 2
		steady(0, cfg.Interval, func(elapsed time.Duration) time.Duration {
			lambda := 0.25 + 0.75*math.Pow(math.Sin(math.Pi*float64(elapsed)/float64(period)), 2)
			return time.Duration(float64(cfg.Interval) / lambda)
		})
	case ScenarioMixed:
		steady(0, cfg.Interval, fixed) // DIS state: fixed rate
		// Ticker: bursts of 8 back-to-back packets every 25 intervals.
		burstGap := 25 * cfg.Interval
		var burst func()
		burst = func() {
			if clk.Now().After(dataEnd) {
				return
			}
			for i := 0; i < 8; i++ {
				send(1)
			}
			clk.AfterFunc(burstGap, burst)
		}
		clk.AfterFunc(burstGap/2, burst)
		// Invalidation: sparse, one packet every 12 intervals.
		steady(2, cfg.Interval*3, func(time.Duration) time.Duration { return 12 * cfg.Interval })
	default:
		steady(0, cfg.Interval, fixed)
	}
}

// RunScenario builds, drives and judges one scenario run.
func RunScenario(cfg ScenarioConfig) (*ScenarioResult, error) {
	cfg = cfg.withDefaults()
	f, err := buildFleet(cfg)
	if err != nil {
		return nil, err
	}
	f.cluster.EnableTraceHash(true)
	f.cluster.SetParallel(cfg.Parallel)
	f.cluster.SetBulkDelivery(cfg.Bulk)
	if err := f.cluster.Start(); err != nil {
		return nil, err
	}
	f.scheduleSenders(make([]byte, cfg.Payload))

	wallStart := time.Now()
	if err := f.cluster.Run(cfg.Duration); err != nil {
		return nil, err
	}
	elapsed := time.Since(wallStart)

	res := &ScenarioResult{
		Class:     cfg.Class,
		Seed:      cfg.Seed,
		Elapsed:   elapsed,
		Receivers: len(f.receivers),
		Joiners:   len(f.joined),
	}
	f.checkInvariants(res)

	// Shutdown: stop every handler, drain in-flight traffic, and require
	// the fleet's event queues to empty — a timer re-arming itself past
	// shutdown is a leak.
	for _, s := range f.senders {
		s.Stop()
	}
	for _, fr := range append(append([]*fleetReceiver(nil), f.receivers...), f.joined...) {
		if fr.rcv != nil {
			fr.rcv.Stop()
		}
	}
	for _, isl := range f.cluster.Islands() {
		for _, node := range isl.Net.Nodes() {
			if !node.Crashed() {
				node.Crash() // detaches loggers and any leftover handlers
			}
		}
	}
	if err := f.cluster.Run(2 * time.Second); err != nil {
		return nil, err
	}
	if n := f.cluster.PendingTimers(); n != 0 {
		f.violate("timer-leak", fmt.Sprintf("%d events still pending after shutdown drain", n))
	}

	res.TraceHash = f.cluster.TraceHash()
	res.Events = f.cluster.Events()
	res.Deliveries = f.cluster.Deliveries()
	res.Violations = f.violations
	return res, nil
}

// checkInvariants applies the class's seeded invariants and fills in the
// protocol numbers. Runs at the post-Run barrier: no island is executing.
func (f *scenarioFleet) checkInvariants(res *ScenarioResult) {
	cfg := f.cfg
	for i, s := range f.senders {
		last := s.LastSeq()
		res.LastSeq = append(res.LastSeq, last)
		if last == 0 {
			f.violate("no-data", fmt.Sprintf("stream %s sent nothing", f.streams[i].name))
		}
		if r := s.Retained(); r != 0 {
			f.violate("retention", fmt.Sprintf("stream %s: %d packets still retained", f.streams[i].name, r))
		}
	}

	all := append(append([]*fleetReceiver(nil), f.receivers...), f.joined...)
	var backfill []time.Duration
	for _, fr := range all {
		if fr.rcv == nil {
			f.violate("join", fmt.Sprintf("site %d joiner never attached", fr.site))
			continue
		}
		st := fr.rcv.Stats()
		res.Recovered += st.Recovered
		res.NacksSent += st.NacksSent
		key := f.streams[fr.stream].key()
		last := res.LastSeq[fr.stream]
		if got := fr.rcv.Contiguous(key); got != last {
			f.violate("convergence", fmt.Sprintf("site %d stream %s receiver at %d, want %d (joiner=%v)",
				fr.site, f.streams[fr.stream].name, got, last, fr.joiner))
		}
		switch cfg.Class {
		case ScenarioCryingBaby:
			if fr.site == f.cryingSite {
				if st.Recovered == 0 {
					f.violate("crying-baby", fmt.Sprintf("crying site %d receiver recovered nothing; loss window ineffective", fr.site))
				}
			} else if st.Recovered != 0 || st.NacksSent != 0 {
				f.violate("containment", fmt.Sprintf("site %d saw recovery traffic (%d recovered, %d nacks) outside the crying site",
					fr.site, st.Recovered, st.NacksSent))
			}
		case ScenarioFlashCrowd:
			if fr.joiner {
				if st.DataDelivered == 0 {
					f.violate("join", fmt.Sprintf("site %d joiner delivered nothing", fr.site))
				}
				// Late joins start at the join floor; fetching the full
				// history from the log store would show up as a delivery
				// count at (or near) the stream length.
				if st.DataDelivered >= last {
					f.violate("join-floor", fmt.Sprintf("site %d joiner delivered %d of %d — history was backfilled",
						fr.site, st.DataDelivered, last))
				}
			}
		}
		// Backfill latency population: the join wave for flash-crowd,
		// everyone otherwise.
		if cfg.Class != ScenarioFlashCrowd || fr.joiner {
			for _, d := range fr.rcv.RecoveryTimes(key) {
				backfill = append(backfill, d)
			}
		}
	}
	if len(backfill) > 0 {
		sort.Slice(backfill, func(a, b int) bool { return backfill[a] < backfill[b] })
		res.BackfillP50 = backfill[len(backfill)*50/100]
		res.BackfillP99 = backfill[len(backfill)*99/100]
	}
	if cfg.Class == ScenarioFlashCrowd && res.Joiners == 0 {
		f.violate("join", "flash-crowd run built no joiners")
	}
	if cfg.Class == ScenarioCryingBaby && res.Recovered == 0 {
		f.violate("crying-baby", "no recovery happened anywhere; scenario is vacuous")
	}
}
