package chaos

import (
	"testing"
	"time"
)

// TestScenarioMatrix is the scenario smoke matrix: one pinned seed per
// class, run three ways — sequential, parallel, and parallel+bulk — with
// every class's seeded invariants enforced and all three FNV trace hashes
// required to be identical. This is the acceptance gate for the parallel
// engine: same seed, same trace, any execution mode.
func TestScenarioMatrix(t *testing.T) {
	for _, class := range ScenarioClasses() {
		class := class
		t.Run(string(class), func(t *testing.T) {
			seed := int64(100 + len(class)) // pinned, distinct per class
			modes := []struct {
				name     string
				parallel bool
				bulk     bool
			}{
				{"sequential", false, false},
				{"parallel", true, false},
				{"parallel-bulk", true, true},
			}
			var ref *ScenarioResult
			for _, m := range modes {
				res, err := RunScenario(ScenarioConfig{
					Class:    class,
					Seed:     seed,
					Parallel: m.parallel,
					Bulk:     m.bulk,
				})
				if err != nil {
					t.Fatalf("%s: %v", m.name, err)
				}
				if !res.OK() {
					t.Fatalf("%s:\n%s", m.name, res.Report())
				}
				if ref == nil {
					ref = res
					t.Logf("%s", res.Report())
					continue
				}
				if res.TraceHash != ref.TraceHash {
					t.Errorf("%s trace hash %016x != sequential %016x", m.name, res.TraceHash, ref.TraceHash)
				}
				if res.Events != ref.Events {
					t.Errorf("%s logical events %d != sequential %d", m.name, res.Events, ref.Events)
				}
				if res.Deliveries != ref.Deliveries {
					t.Errorf("%s deliveries %d != sequential %d", m.name, res.Deliveries, ref.Deliveries)
				}
			}
			if ref.Deliveries == 0 || ref.Recovered == 0 {
				t.Fatalf("scenario exercised nothing: %s", ref.Report())
			}
		})
	}
}

// TestScenarioFlashCrowdBackfill pins the flash-crowd specifics: the wave
// actually attaches, every joiner converges from its join floor (no
// history fetch), and the backfill latency percentiles are measured and
// sane (at least one cross-island round trip, bounded by the run).
func TestScenarioFlashCrowdBackfill(t *testing.T) {
	res, err := RunScenario(ScenarioConfig{Class: ScenarioFlashCrowd, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("%s", res.Report())
	}
	if res.Joiners == 0 {
		t.Fatal("no joiners built")
	}
	if res.BackfillP50 == 0 {
		t.Fatal("no backfill latency measured; the wave never recovered anything")
	}
	if res.BackfillP50 < 16*time.Millisecond {
		t.Fatalf("backfill p50 %v below one cross-island round trip", res.BackfillP50)
	}
	if res.BackfillP99 > 10*time.Second {
		t.Fatalf("backfill p99 %v absurd", res.BackfillP99)
	}
	if res.BackfillP99 < res.BackfillP50 {
		t.Fatalf("p99 %v < p50 %v", res.BackfillP99, res.BackfillP50)
	}
}

// TestScenarioCryingBabyContainment reruns the §6 class across seeds: the
// crying site recovers continuously while zero recovery traffic appears
// anywhere else — the invariant is enforced inside RunScenario, so this
// is a seed sweep of it.
func TestScenarioCryingBabyContainment(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		res, err := RunScenario(ScenarioConfig{Class: ScenarioCryingBaby, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK() {
			t.Fatalf("seed %d:\n%s", seed, res.Report())
		}
		if res.Recovered == 0 {
			t.Fatalf("seed %d: crying site recovered nothing", seed)
		}
	}
}
