package chaos

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lbrm/internal/obs"
)

// flightGlob lets `make flight` point the schema check at JSONL files the
// chaos matrix just wrote. Empty (the plain `go test` path) means generate
// a log in-process instead.
var flightGlob = flag.String("flight-glob", "", "glob of flight-log JSONL files to validate against testdata/flight_schema.golden")

// schemaEntry is one golden requirement: a metric of a given kind that the
// flight log's final sample must carry.
type schemaEntry struct{ kind, name string }

func loadGoldenSchema(t *testing.T) []schemaEntry {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "flight_schema.golden"))
	if err != nil {
		t.Fatal(err)
	}
	var entries []schemaEntry
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 || (fields[0] != "counter" && fields[0] != "gauge" && fields[0] != "histogram") {
			t.Fatalf("flight_schema.golden:%d: malformed entry %q", ln+1, line)
		}
		entries = append(entries, schemaEntry{fields[0], fields[1]})
	}
	if len(entries) == 0 {
		t.Fatal("flight_schema.golden holds no requirements")
	}
	return entries
}

// validateFlightLog checks one JSONL flight log: every line parses as a
// FlightSample with non-nil metric maps, sample times never go backwards,
// and the final sample satisfies every golden requirement.
func validateFlightLog(name string, data []byte, required []schemaEntry) error {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var last obs.FlightSample
	lines, prevAt := 0, int64(0)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		lines++
		var s obs.FlightSample
		if err := json.Unmarshal(line, &s); err != nil {
			return fmt.Errorf("%s line %d: %v", name, lines, err)
		}
		if s.Metrics.Counters == nil || s.Metrics.Gauges == nil || s.Metrics.Histograms == nil {
			return fmt.Errorf("%s line %d: nil metric map in sample", name, lines)
		}
		if s.At < prevAt {
			return fmt.Errorf("%s line %d: at_ns %d went backwards (prev %d)", name, lines, s.At, prevAt)
		}
		prevAt = s.At
		last = s
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("%s: %v", name, err)
	}
	if lines == 0 {
		return fmt.Errorf("%s: empty flight log", name)
	}
	for _, req := range required {
		var ok bool
		switch req.kind {
		case "counter":
			_, ok = last.Metrics.Counters[req.name]
		case "gauge":
			_, ok = last.Metrics.Gauges[req.name]
		case "histogram":
			_, ok = last.Metrics.Histograms[req.name]
		}
		if !ok {
			return fmt.Errorf("%s: final sample missing %s %q", name, req.kind, req.name)
		}
	}
	return nil
}

// validateFlightGlob checks every JSONL file matched by pattern against
// the golden schema. Returns how many files it validated.
func validateFlightGlob(t *testing.T, pattern string, required []schemaEntry) int {
	t.Helper()
	files, err := filepath.Glob(pattern)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if err := validateFlightLog(f, data, required); err != nil {
			t.Error(err)
		} else {
			t.Logf("flight log ok: %s", f)
		}
	}
	return len(files)
}

// TestFlightLogSchema validates flight-log JSONL against the golden
// schema. With -flight-glob it checks files the chaos matrix just wrote
// (`make flight`); without, it runs one chaos scenario in-process,
// validates the log it would have written, and then validates the
// committed flightlogs/ samples at the repo root — so a schema change
// that stales the committed logs fails plain `go test` until they are
// regenerated.
func TestFlightLogSchema(t *testing.T) {
	required := loadGoldenSchema(t)
	if *flightGlob != "" {
		if n := validateFlightGlob(t, *flightGlob, required); n == 0 {
			t.Fatalf("-flight-glob %q matched no files", *flightGlob)
		}
		return
	}
	if n := validateFlightGlob(t, filepath.Join("..", "..", "flightlogs", "*.jsonl"), required); n == 0 {
		t.Error("no committed flightlogs/*.jsonl found — run `make flight` and commit the output")
	}
	res, err := Run(Config{Seed: 1, CrashPrimary: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("invariants violated:\n%s", res.Report())
	}
	var buf bytes.Buffer
	if err := obs.WriteFlightLog(&buf, res.Flight); err != nil {
		t.Fatal(err)
	}
	if err := validateFlightLog("in-process", buf.Bytes(), required); err != nil {
		t.Fatal(err)
	}
	if res.FlightChains == 0 {
		t.Fatal("chaos run recorded no recovery chains — flight recorder is dark")
	}
}
