package chaos

import (
	"fmt"
	"testing"
	"time"

	"lbrm/internal/wire"
)

// quorumFaultKinds is the quorum durability matrix's fault axis.
var quorumFaultKinds = []string{
	quorumFaultCrashPrimary, quorumFaultCrashReplica, quorumFaultRingLink,
}

// TestChaosQuorumMatrix is the quorum durability matrix: 14 seeds × 3
// single-fault classes (primary crash, replica crash, ring-link
// partition), each composed with a seed-drawn receiver-site partition, all
// with a surviving write quorum of 2 out of 3 replicas. Every run must
// hold every invariant — including invariant 11: zero receiver skips,
// zero abandoned ranges, zero backfill skips, no acked-sequence loss.
func TestChaosQuorumMatrix(t *testing.T) {
	for _, kind := range quorumFaultKinds {
		for seed := int64(1); seed <= 14; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", kind, seed), func(t *testing.T) {
				res, err := Run(Config{Seed: seed, Quorum: 2, QuorumFault: kind})
				if err != nil {
					t.Fatal(err)
				}
				if !res.OK() {
					t.Fatalf("invariants violated:\n%s", res.Report())
				}
				if res.Metrics.Counters["primary.quorum.applied"] == 0 {
					t.Fatal("quorum replication never applied a packet — ring inactive?")
				}
				if kind == quorumFaultCrashPrimary {
					if res.Failovers == 0 || res.Promotions == 0 {
						t.Fatalf("primary crashed but failovers=%d promotions=%d",
							res.Failovers, res.Promotions)
					}
					if res.Metrics.Counters["primary.quorum.acks_parked"] == 0 {
						t.Fatal("sync blackout parked no acks — quorum gating inactive?")
					}
				} else if res.Metrics.Counters["primary.quorum.ring_stalls"] == 0 {
					t.Fatal("a ring hop died but the primary never detected a stall")
				}
			})
		}
	}
}

// TestChaosQuorumDeterministic pins seed-reproducibility for the quorum
// schedule: same seed, same fault class, same packet trace.
func TestChaosQuorumDeterministic(t *testing.T) {
	for _, kind := range quorumFaultKinds {
		a, err := Run(Config{Seed: 7, Quorum: 2, QuorumFault: kind})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(Config{Seed: 7, Quorum: 2, QuorumFault: kind})
		if err != nil {
			t.Fatal(err)
		}
		if a.TraceHash != b.TraceHash {
			t.Fatalf("%s: same seed, different traces: %016x vs %016x",
				kind, a.TraceHash, b.TraceHash)
		}
	}
}

// TestChaosQuorumRevertTrips is the proof-by-revert: the exact schedule
// every crash-primary matrix run survives — sync blackout starving the
// replicas, then the primary crash — must produce observable data loss
// when quorum gating is disabled and the primary again acks packets it is
// the only copy of. The run still converges (freshness over completeness)
// but invariant 11 trips on every front: receivers skip sequence numbers,
// abandon recovery ranges, and the promoted replica declares backfill
// holes unrecoverable.
func TestChaosQuorumRevertTrips(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		gated, err := Run(Config{Seed: seed, Quorum: 2, QuorumFault: quorumFaultCrashPrimary})
		if err != nil {
			t.Fatal(err)
		}
		if !gated.OK() {
			t.Fatalf("seed %d with quorum gating: %s", seed, gated.Report())
		}
		reverted, err := Run(Config{Seed: seed, Quorum: 2,
			QuorumFault: quorumFaultCrashPrimary, quorumRevert: true})
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]bool{}
		for _, v := range reverted.Violations {
			got[v.Name] = true
		}
		for _, want := range []string{"quorum-no-skip", "quorum-abandoned", "quorum-skip"} {
			if !got[want] {
				t.Fatalf("seed %d reverted run missing expected violation %q; got:\n%s",
					seed, want, reverted.Report())
			}
		}
		if reverted.BackfillSkipped == 0 {
			t.Fatalf("seed %d reverted run lost no sequences — revert knob inert?", seed)
		}
	}
}

// TestChaosQuorumReplicationCostConstant is the O(1)-in-replica-count
// accounting check, settled against the wire tap's per-node transmit
// ledger rather than any component counter: on a fault-free run, the
// acting primary sends about one sync-class packet per logged data packet
// (the single ring token; plus ring installation and join-window LogSync
// catch-up) whether the ring has 3 replicas or 5. Direct fan-out would
// cost one message per replica per packet — 3 and 5 — and going from 3 to
// 5 replicas would add ≥ 2 packets per packet; the ring's marginal cost
// must stay far below that. Each replica likewise forwards each token at
// most once.
func TestChaosQuorumReplicationCostConstant(t *testing.T) {
	perPkt := make(map[int]float64)
	for _, replicas := range []int{3, 5} {
		res, err := Run(Config{Seed: 2, Quorum: 2, Replicas: replicas,
			QuorumFault: quorumFaultNone, Duration: 8e9})
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK() {
			t.Fatalf("replicas=%d: %s", replicas, res.Report())
		}
		if res.LastSeq == 0 {
			t.Fatal("no traffic")
		}
		sync := res.NodeTx["primary"][wire.ClassSync]
		perPkt[replicas] = float64(sync.Packets) / float64(res.LastSeq)
		if perPkt[replicas] > 2.0 {
			t.Fatalf("replicas=%d: primary sent %.2f sync pkts per data pkt (tap: %d sync pkts, %d data pkts), want ≈ 1",
				replicas, perPkt[replicas], sync.Packets, res.LastSeq)
		}
		for i := 0; i < replicas; i++ {
			rsync := res.NodeTx[fmt.Sprintf("replica%d", i)][wire.ClassSync]
			if per := float64(rsync.Packets) / float64(res.LastSeq); per > 2.0 {
				t.Fatalf("replicas=%d: replica%d sent %.2f sync pkts per data pkt, want ≈ 1",
					replicas, i, per)
			}
		}
		// The ring really carried the payloads: every hop applied ~every
		// packet.
		if applied := res.Metrics.Counters["primary.quorum.applied"]; applied < res.LastSeq*uint64(replicas-1) {
			t.Fatalf("replicas=%d: only %d ring applications for %d packets × %d hops",
				replicas, applied, res.LastSeq, replicas)
		}
	}
	if grow := perPkt[5] - perPkt[3]; grow > 1.0 {
		t.Fatalf("primary per-packet sync cost grew %.2f going 3→5 replicas (%.2f → %.2f); direct fan-out would add 2.00, a ring must stay ≈ 0",
			grow, perPkt[3], perPkt[5])
	}
}

// TestChaosQuorumLowRateNoFalseStalls pins two low-send-rate liveness
// bugs found by driving the CLI at its defaults (1 s interval, 2 m run —
// both longer than RingStallTimeout and FailoverTimeout): the ring-stall
// detector used time-since-last-return, so a freshly launched token
// looked stale the moment a tick landed in its few-ms flight window, and
// the sender's failover check measured ack-idleness from the previous
// ack, so every newly retained packet started life already "overdue".
// Both made a fault-free quorum run thrash through spurious
// stall/repair/failover cycles. With the fixes, a fault-free low-rate run
// must see no stalls, no failovers, and no parked acks.
func TestChaosQuorumLowRateNoFalseStalls(t *testing.T) {
	res, err := Run(Config{
		Seed: 7, Quorum: 2, QuorumFault: quorumFaultNone,
		Duration: 45 * time.Second, SendEvery: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("invariants violated:\n%s", res.Report())
	}
	if res.Failovers != 0 {
		t.Errorf("fault-free low-rate run elected %d new primaries, want 0", res.Failovers)
	}
	if v := res.Metrics.Counters["primary.quorum.ring_stalls"]; v != 0 {
		t.Errorf("ring_stalls = %d, want 0 (no faults scheduled)", v)
	}
	// One below-watermark ack per packet (the onData ack racing its own
	// ring token) is steady state; a healthy ring must not re-park.
	if v := res.Metrics.Counters["primary.quorum.acks_parked"]; v > res.LastSeq {
		t.Errorf("acks_parked = %d > %d packets: parked acks churned on a healthy ring", v, res.LastSeq)
	}
}
