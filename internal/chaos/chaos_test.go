package chaos

import (
	"testing"
	"time"
)

// TestChaosDeterministic: the whole point of the harness — one seed must
// reproduce the identical fault schedule and the identical packet trace.
func TestChaosDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, CrashPrimary: true}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Schedule) != len(b.Schedule) {
		t.Fatalf("schedules differ in length: %d vs %d", len(a.Schedule), len(b.Schedule))
	}
	for i := range a.Schedule {
		if a.Schedule[i] != b.Schedule[i] {
			t.Fatalf("schedules diverge at %d: %s vs %s", i, a.Schedule[i], b.Schedule[i])
		}
	}
	if a.TraceHash != b.TraceHash {
		t.Fatalf("trace hashes differ: %016x vs %016x", a.TraceHash, b.TraceHash)
	}
	if a.LastSeq != b.LastSeq || len(a.Violations) != len(b.Violations) {
		t.Fatalf("verdicts differ:\n%s\nvs\n%s", a.Report(), b.Report())
	}
}

// TestChaosDifferentSeedsDiverge: a sanity check that the schedule actually
// depends on the seed (a constant schedule would make the matrix worthless).
func TestChaosDifferentSeedsDiverge(t *testing.T) {
	a := buildSchedule(Config{Seed: 1}.withDefaults())
	b := buildSchedule(Config{Seed: 2}.withDefaults())
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical fault schedules")
	}
}

// TestChaosPrimaryCrash: the hardest recovery path — primary dies mid-stream
// with full state loss, a replica is promoted within the failover bound, the
// old primary reboots as a cold replica, and the deployment converges.
func TestChaosPrimaryCrash(t *testing.T) {
	res, err := Run(Config{Seed: 7, CrashPrimary: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("invariants violated:\n%s", res.Report())
	}
	if res.Failovers == 0 {
		t.Fatalf("primary crashed but sender never failed over:\n%s", res.Report())
	}
	if res.FailoverLatency <= 0 {
		t.Fatalf("no failover latency recorded:\n%s", res.Report())
	}
	if res.Promotions == 0 {
		t.Fatalf("no replica was promoted:\n%s", res.Report())
	}
}

// TestChaosPartitionsOnly and TestChaosLinkChaosOnly exercise single fault
// classes so a matrix failure can be bisected by class.
func TestChaosPartitionsOnly(t *testing.T) {
	res, err := Run(Config{Seed: 11, DisableCrashes: true, DisableLinkChaos: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("invariants violated:\n%s", res.Report())
	}
}

func TestChaosLinkChaosOnly(t *testing.T) {
	res, err := Run(Config{Seed: 12, DisableCrashes: true, DisablePartitions: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("invariants violated:\n%s", res.Report())
	}
}

// TestChaosMatrix is the fixed seed matrix behind `make chaos`: every seed
// must satisfy every invariant; a failure prints the seed and the schedule
// (the Report embeds both), which is all that is needed to reproduce it.
func TestChaosMatrix(t *testing.T) {
	type entry struct {
		seed int64
		cfg  Config
	}
	matrix := []entry{
		{1, Config{}},
		{2, Config{}},
		{3, Config{}},
		{4, Config{CrashPrimary: true}},
		{5, Config{CrashPrimary: true, Faults: 8}},
		{6, Config{Replicas: 1, CrashPrimary: true}},
		{7, Config{Sites: 4, ReceiversPerSite: 2}},
		{8, Config{Faults: 10, Duration: 25 * time.Second}},
	}
	for _, e := range matrix {
		e := e
		e.cfg.Seed = e.seed
		res, err := Run(e.cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", e.seed, err)
		}
		if !res.OK() {
			t.Errorf("seed %d failed:\n%s", e.seed, res.Report())
		} else {
			t.Logf("seed %d: lastSeq=%d failovers=%d converged in %v",
				e.seed, res.LastSeq, res.Failovers, res.ConvergeTook)
		}
	}
}
