package chaos

import (
	"testing"
	"time"

	"lbrm/internal/obs"
)

// TestChaosDeterministic: the whole point of the harness — one seed must
// reproduce the identical fault schedule and the identical packet trace.
func TestChaosDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, CrashPrimary: true}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Schedule) != len(b.Schedule) {
		t.Fatalf("schedules differ in length: %d vs %d", len(a.Schedule), len(b.Schedule))
	}
	for i := range a.Schedule {
		if a.Schedule[i] != b.Schedule[i] {
			t.Fatalf("schedules diverge at %d: %s vs %s", i, a.Schedule[i], b.Schedule[i])
		}
	}
	if a.TraceHash != b.TraceHash {
		t.Fatalf("trace hashes differ: %016x vs %016x", a.TraceHash, b.TraceHash)
	}
	if a.LastSeq != b.LastSeq || len(a.Violations) != len(b.Violations) {
		t.Fatalf("verdicts differ:\n%s\nvs\n%s", a.Report(), b.Report())
	}
}

// TestChaosDifferentSeedsDiverge: a sanity check that the schedule actually
// depends on the seed (a constant schedule would make the matrix worthless).
func TestChaosDifferentSeedsDiverge(t *testing.T) {
	a := buildSchedule(Config{Seed: 1}.withDefaults())
	b := buildSchedule(Config{Seed: 2}.withDefaults())
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical fault schedules")
	}
}

// TestChaosPrimaryCrash: the hardest recovery path — primary dies mid-stream
// with full state loss, a replica is promoted within the failover bound, the
// old primary reboots as a cold replica, and the deployment converges.
func TestChaosPrimaryCrash(t *testing.T) {
	res, err := Run(Config{Seed: 7, CrashPrimary: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("invariants violated:\n%s", res.Report())
	}
	if res.Failovers == 0 {
		t.Fatalf("primary crashed but sender never failed over:\n%s", res.Report())
	}
	if res.FailoverLatency <= 0 {
		t.Fatalf("no failover latency recorded:\n%s", res.Report())
	}
	if res.Promotions == 0 {
		t.Fatalf("no replica was promoted:\n%s", res.Report())
	}
}

// TestChaosPartitionsOnly and TestChaosLinkChaosOnly exercise single fault
// classes so a matrix failure can be bisected by class.
func TestChaosPartitionsOnly(t *testing.T) {
	res, err := Run(Config{Seed: 11, DisableCrashes: true, DisableLinkChaos: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("invariants violated:\n%s", res.Report())
	}
}

func TestChaosLinkChaosOnly(t *testing.T) {
	res, err := Run(Config{Seed: 12, DisableCrashes: true, DisablePartitions: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("invariants violated:\n%s", res.Report())
	}
}

// TestChaosSourcePartition: the §2.2.3 split-brain scenario — the acting
// primary is isolated (deaf, mute, or both) with all state intact, the
// sender fails over and mints a new epoch, the partition heals, and the
// stale primary must be fenced everywhere until a heartbeat demotes it.
func TestChaosSourcePartition(t *testing.T) {
	for _, seed := range []int64{2, 5, 7, 8} {
		res, err := Run(Config{Seed: seed, SourcePartition: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.OK() {
			t.Errorf("seed %d failed:\n%s", seed, res.Report())
			continue
		}
		if res.Failovers == 0 {
			t.Errorf("seed %d: primary was partitioned but sender never failed over:\n%s",
				seed, res.Report())
		}
		if res.PrimaryEpoch < 2 {
			t.Errorf("seed %d: failover happened but no new epoch was minted (epoch %d)",
				seed, res.PrimaryEpoch)
		}
	}
}

// TestChaosJoinWindow: every random fault lands in the first tenth of the
// run, while receivers and loggers are still establishing first contact.
func TestChaosJoinWindow(t *testing.T) {
	res, err := Run(Config{Seed: 31, JoinWindow: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("invariants violated:\n%s", res.Report())
	}
	for _, f := range res.Schedule {
		if f.At >= 2*time.Second { // Duration/10 of the 20s default
			t.Fatalf("join-window fault scheduled too late: %s", f)
		}
	}
}

// TestChaosOverlapping: a flaky-link window and a partition window overlap
// on one site's tail circuit; the stacked loss overlays must apply and heal
// independently.
func TestChaosOverlapping(t *testing.T) {
	res, err := Run(Config{Seed: 41, Overlapping: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("invariants violated:\n%s", res.Report())
	}
}

// TestChaosUnfencedPrimaryTrips proves the un-fenced-primary invariant has
// teeth: with epoch fencing reverted (UnsafeNoFence), the deaf partitioned
// primary misses the redirect multicast, keeps acting past the heal grace,
// and the monitor must catch the split brain that fencing normally
// prevents. The same seed with fencing on is clean.
func TestChaosUnfencedPrimaryTrips(t *testing.T) {
	// Seed 7 draws the "deaf" isolation mode: the stale primary can still
	// send but hears nothing, so without epochs nothing ever demotes it.
	fenced, err := Run(Config{Seed: 7, SourcePartition: true})
	if err != nil {
		t.Fatal(err)
	}
	if !fenced.OK() {
		t.Fatalf("fenced run should be clean:\n%s", fenced.Report())
	}
	unfenced, err := Run(Config{Seed: 7, SourcePartition: true, disableFencing: true})
	if err != nil {
		t.Fatal(err)
	}
	tripped := false
	for _, v := range unfenced.Violations {
		if v.Name == "unfenced-primary" {
			tripped = true
		}
	}
	if !tripped {
		t.Fatalf("fencing disabled but the un-fenced-primary invariant did not trip:\n%s",
			unfenced.Report())
	}
}

// TestChaosRecoveryBandwidthAccounted: the tail-circuit traffic report is
// populated and the NACK class is non-empty under link chaos — the budget
// identity itself is enforced inside every run as the nack-budget
// invariant.
func TestChaosRecoveryBandwidthAccounted(t *testing.T) {
	res, err := Run(Config{Seed: 12, DisableCrashes: true, DisablePartitions: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("invariants violated:\n%s", res.Report())
	}
	if res.TailTraffic["data"].Packets == 0 || res.TailTraffic["heartbeat"].Packets == 0 {
		t.Fatalf("tail traffic accounting empty:\n%s", res.Report())
	}
	if res.TailTraffic["nack"].Packets == 0 || res.TailTraffic["retrans"].Packets == 0 {
		t.Fatalf("link chaos ran but no recovery traffic was classified:\n%s", res.Report())
	}
	if res.TailTrafficFault["data"].Packets >= res.TailTraffic["data"].Packets {
		t.Fatalf("fault-window traffic should be a strict subset:\n%s", res.Report())
	}
}

// TestChaosMatrix is the fixed seed matrix behind `make chaos`: every seed
// must satisfy every invariant; a failure prints the seed and the schedule
// (the Report embeds both), which is all that is needed to reproduce it.
func TestChaosMatrix(t *testing.T) {
	type entry struct {
		seed int64
		cfg  Config
	}
	matrix := []entry{
		{1, Config{}},
		{2, Config{}},
		{3, Config{}},
		{4, Config{CrashPrimary: true}},
		{5, Config{CrashPrimary: true, Faults: 8}},
		{6, Config{Replicas: 1, CrashPrimary: true}},
		{7, Config{Sites: 4, ReceiversPerSite: 2}},
		{8, Config{Faults: 10, Duration: 25 * time.Second}},
		// Seed 9 pins the low-rate quorum liveness fix (see
		// TestChaosQuorumLowRateNoFalseStalls): a fault-free quorum run at
		// the CLI's default send rate — slower than every protocol timeout —
		// must hold all invariants in the race-detected seed matrix.
		{9, Config{Quorum: 2, QuorumFault: quorumFaultNone,
			Duration: 45 * time.Second, SendEvery: time.Second}},
		// Seed 10 keeps one three-tier hierarchy run in the headline matrix
		// (the full class × seed sweep lives in TestChaosHierarchyMatrix).
		{10, Config{Regions: 2, Sites: 4, ReceiversPerSite: 2}},
	}
	for _, e := range matrix {
		e := e
		e.cfg.Seed = e.seed
		res, err := Run(e.cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", e.seed, err)
		}
		if !res.OK() {
			t.Errorf("seed %d failed:\n%s", e.seed, res.Report())
		} else {
			t.Logf("seed %d: lastSeq=%d failovers=%d converged in %v",
				e.seed, res.LastSeq, res.Failovers, res.ConvergeTook)
		}
	}
}

// TestChaosMetricsCrossCheck drives one seed through every schedule class
// and requires the observability ledgers to reconcile: every run already
// enforces the metrics-reconcile, nack-budget-metrics and epoch-gauge
// invariants inside checkFinalInvariants (component metrics vs independent
// wire-tap counts, across crash/restart incarnations); this test
// additionally asserts the merged fleet snapshot is populated — a silently
// empty registry would reconcile trivially.
func TestChaosMetricsCrossCheck(t *testing.T) {
	classes := []struct {
		name     string
		cfg      Config
		wantNack bool // schedule guarantees loss, so NACK metrics must flow
	}{
		{"legacy", Config{Seed: 3}, false},
		{"crash-primary", Config{Seed: 4, CrashPrimary: true}, false},
		{"source-partition", Config{Seed: 7, SourcePartition: true}, false},
		{"join-window", Config{Seed: 31, JoinWindow: true}, false},
		{"overlapping", Config{Seed: 41, Overlapping: true}, true},
	}
	for _, c := range classes {
		c := c
		t.Run(c.name, func(t *testing.T) {
			res, err := Run(c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.OK() {
				t.Fatalf("invariants violated:\n%s", res.Report())
			}
			m := res.Metrics
			// The datapath actually flowed through the instrumented
			// components: data out of the sender, into receivers, logged
			// by the loggers.
			want := []string{
				"sender.tx.data.pkts", "sender.data_sent", "sender.heartbeats",
				"recv.delivered", "primary.logged", "secondary.logged",
			}
			if c.wantNack {
				want = append(want, "recv.tx.nack.pkts")
			}
			for _, name := range want {
				if m.Counters[name] == 0 {
					t.Errorf("merged metric %q is zero:\n%s", name, res.Report())
				}
			}
			// The fleet's epoch gauges agree with the protocol's verdict
			// (gauges max-merge, and the sender holds the newest epoch).
			if g := m.Gauges["sender.primary_epoch"]; g != int64(res.PrimaryEpoch) {
				t.Errorf("merged sender.primary_epoch %d != PrimaryEpoch %d", g, res.PrimaryEpoch)
			}
			if c.cfg.CrashPrimary {
				if m.Counters["sender.failovers"] == 0 || m.Counters["primary.promotions"] == 0 {
					t.Errorf("crash-primary run recorded no failover/promotion metrics:\n%s", res.Report())
				}
				var start, done bool
				for _, ev := range res.SenderTrace {
					start = start || ev.Kind == obs.KindFailoverStart
					done = done || ev.Kind == obs.KindFailoverDone
				}
				if !start || !done {
					t.Errorf("sender trace missing failover transitions (start=%v done=%v)", start, done)
				}
			}
		})
	}
}

// TestChaosSeedMatrixE21 is the experiment-E21 matrix: 20 seeds through
// each schedule class — the legacy random mix plus the three robustness
// classes (source-segment partition, join-window, overlapping) — with
// every invariant (including un-fenced-single-primary, epoch monotonicity
// and the NACK budget) required to hold on all of them.
func TestChaosSeedMatrixE21(t *testing.T) {
	classes := []struct {
		name string
		cfg  Config
	}{
		{"legacy", Config{}},
		{"source-partition", Config{SourcePartition: true}},
		{"join-window", Config{JoinWindow: true}},
		{"overlapping", Config{Overlapping: true}},
	}
	for _, c := range classes {
		c := c
		t.Run(c.name, func(t *testing.T) {
			var failovers, staleAcks uint64
			var maxEpoch uint32
			for seed := int64(1); seed <= 20; seed++ {
				cfg := c.cfg
				cfg.Seed = seed
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !res.OK() {
					t.Errorf("class %s seed %d failed:\n%s", c.name, seed, res.Report())
				}
				failovers += res.Failovers
				staleAcks += res.StaleSourceAcks
				if res.PrimaryEpoch > maxEpoch {
					maxEpoch = res.PrimaryEpoch
				}
			}
			t.Logf("class %s: 20 seeds, failovers=%d maxEpoch=%d staleAcksFenced=%d",
				c.name, failovers, maxEpoch, staleAcks)
		})
	}
}
