package chaos

import (
	"testing"
	"time"

	"lbrm/internal/vtime"
)

// TestSchedulerDifferential runs every chaos schedule class on one pinned
// seed twice — once on the default hierarchical timer wheel and once on
// the legacy container/heap scheduler (vtime.UseHeapScheduler) — and
// asserts the FNV trace hashes are identical. The wheel must be a drop-in
// replacement for the event loop, not a behavioral fork: any divergence in
// event ordering anywhere in a full protocol run (failover races, NACK
// jitter, partition heal timing) shows up here as a hash mismatch.
func TestSchedulerDifferential(t *testing.T) {
	classes := []struct {
		name string
		cfg  Config
	}{
		{"legacy", Config{Seed: 3}},
		{"crash-primary", Config{Seed: 4, CrashPrimary: true}},
		{"source-partition", Config{Seed: 7, SourcePartition: true}},
		{"join-window", Config{Seed: 31, JoinWindow: true}},
		{"overlapping", Config{Seed: 41, Overlapping: true}},
		{"quorum", Config{Seed: 9, Quorum: 2, QuorumFault: quorumFaultNone,
			Replicas: 2, Duration: 15 * time.Second}},
		{"hierarchy", Config{Seed: 10, Regions: 2, Sites: 4, ReceiversPerSite: 2}},
	}
	if vtime.HeapSchedulerForced() {
		t.Fatal("heap scheduler knob already latched; another test leaked it")
	}
	for _, c := range classes {
		c := c
		t.Run(c.name, func(t *testing.T) {
			wheel, err := Run(c.cfg)
			if err != nil {
				t.Fatalf("wheel run: %v", err)
			}
			vtime.UseHeapScheduler(true)
			heap, herr := Run(c.cfg)
			vtime.UseHeapScheduler(false)
			if herr != nil {
				t.Fatalf("heap run: %v", herr)
			}
			if wheel.TraceHash != heap.TraceHash {
				t.Fatalf("trace hash diverged: wheel %016x heap %016x", wheel.TraceHash, heap.TraceHash)
			}
			if wheel.LastSeq != heap.LastSeq {
				t.Fatalf("last seq diverged: wheel %d heap %d", wheel.LastSeq, heap.LastSeq)
			}
		})
	}
}
