// Benchmark harness: one bench per table and figure of the LBRM paper
// (see DESIGN.md for the experiment index and EXPERIMENTS.md for
// paper-vs-measured numbers), plus ablation and micro benchmarks.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Each paper bench executes the corresponding experiment from
// internal/experiments and republishes its headline value as a benchmark
// metric, so `go test -bench` output doubles as the reproduction record.
package lbrm_test

import (
	"fmt"
	"testing"
	"time"

	"lbrm"
	"lbrm/internal/experiments"
	"lbrm/internal/heartbeat"
	"lbrm/internal/wire"
)

// skipPerfUnderRace skips wall-clock-sensitive benchmarks when the race
// detector is active: race instrumentation slows the measured code by an
// order of magnitude, so timing metrics (response latency, throughput,
// fan-out rate) would record the detector, not the datapath. Correctness
// benches and virtual-time experiments still run under -race.
func skipPerfUnderRace(b *testing.B) {
	b.Helper()
	if raceEnabled {
		b.Skip("perf-sensitive benchmark skipped under -race")
	}
}

// runExp executes a registered experiment b.N times, reporting metric as
// the headline value.
func runExp(b *testing.B, id string, metrics ...string) {
	b.Helper()
	r, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		last = r.Run()
	}
	for _, m := range metrics {
		b.ReportMetric(last.Get(m), m)
	}
}

// --- one bench per paper table/figure (E1..E12) ---

// BenchmarkFig4 regenerates Figure 4 (fixed vs variable heartbeat rates).
func BenchmarkFig4(b *testing.B) { runExp(b, "fig4", "variable@120s", "fixed@120s") }

// BenchmarkFig5 regenerates Figure 5; ratio@120s is the paper's marked
// 53.4× point.
func BenchmarkFig5(b *testing.B) { runExp(b, "fig5", "ratio@120s") }

// BenchmarkTable1 regenerates Table 1 (overhead ratio vs backoff).
func BenchmarkTable1(b *testing.B) { runExp(b, "table1", "det@2.0", "det@4.0") }

// BenchmarkTable2 regenerates Table 2 (N_sl estimate accuracy vs probes).
func BenchmarkTable2(b *testing.B) { runExp(b, "table2", "analytic@1", "simulated@5") }

// BenchmarkTable3 regenerates Table 3 (logging server response time) over
// loopback UDP; paper total was 1582 µs on 1995 hardware.
func BenchmarkTable3(b *testing.B) {
	skipPerfUnderRace(b)
	runExp(b, "table3", "processingUS", "totalUS")
}

// BenchmarkLoggerThroughput regenerates §3's saturation measurement
// (paper: 1587 requests/s).
func BenchmarkLoggerThroughput(b *testing.B) {
	skipPerfUnderRace(b)
	runExp(b, "throughput", "inprocessPerSec")
}

// BenchmarkFig7NackReduction regenerates the Figure 7/§2.2.2 comparison:
// NACKs reaching the primary under centralized vs distributed logging
// (paper: 20 per site → 1 per site).
func BenchmarkFig7NackReduction(b *testing.B) {
	runExp(b, "nack", "centralizedNacks", "distributedNacks", "reduction")
}

// BenchmarkRecoveryLatency regenerates §2.2.2's latency claim (local
// logger ~4 ms RTT vs primary ~80 ms).
func BenchmarkRecoveryLatency(b *testing.B) { runExp(b, "recovery", "localMS", "remoteMS", "speedup") }

// BenchmarkStatAck regenerates §2.3's repair-strategy behaviour at the
// 500-site scale.
func BenchmarkStatAck(b *testing.B) {
	runExp(b, "statack", "wideRemulticasts", "isolatedRemulticasts", "ackers")
}

// BenchmarkVsSRM regenerates the §6 comparison against wb-style recovery.
func BenchmarkVsSRM(b *testing.B) {
	runExp(b, "srm", "lbrmMeanMS", "srmMeanMS", "latencyRatio")
}

// BenchmarkLossDetection regenerates §2.1.1's burst-detection analysis.
func BenchmarkLossDetection(b *testing.B) { runExp(b, "burst", "worstRatio") }

// BenchmarkDISScenario regenerates §2.1.2's STOW-97 arithmetic (paper:
// ~400k heartbeat pkt/s fixed, ~1/50 of that variable).
func BenchmarkDISScenario(b *testing.B) {
	runExp(b, "dis", "fixedHeartbeats", "variableHeartbeats", "reduction")
}

// --- ablations (design choices called out in DESIGN.md) ---

// BenchmarkAblationBackoff sweeps the heartbeat backoff multiple at the
// DIS operating point, extending Table 1 (paper footnote 2: "h could
// increase by any backoff multiple").
func BenchmarkAblationBackoff(b *testing.B) {
	for _, backoff := range []float64{1.5, 2, 3, 4, 8} {
		b.Run(fmt.Sprintf("backoff=%g", backoff), func(b *testing.B) {
			p := heartbeat.Params{HMin: 250 * time.Millisecond, HMax: 32 * time.Second, Backoff: backoff}
			var ratio float64
			for i := 0; i < b.N; i++ {
				ratio = heartbeat.OverheadRatio(p, 120*time.Second)
			}
			b.ReportMetric(ratio, "fixed/variable")
			b.ReportMetric(heartbeat.DetectionBound(p, time.Second).Seconds(), "detectBound@1s")
		})
	}
}

// BenchmarkAblationAggregation measures the secondary logger's NACK
// aggregation window on/off.
func BenchmarkAblationAggregation(b *testing.B) {
	runExp(b, "aggregation", "noneToPrimary", "defaultToPrimary")
}

// BenchmarkAblationInlineHeartbeat measures the §7 data-carrying-heartbeat
// extension.
func BenchmarkAblationInlineHeartbeat(b *testing.B) {
	runExp(b, "inline", "plainNacks", "inlineNacks")
}

// BenchmarkAblationGroupEstimate measures §2.3.3's continuous population
// estimation.
func BenchmarkAblationGroupEstimate(b *testing.B) { runExp(b, "estimate", "finalEstimate") }

// BenchmarkPosAckBaseline measures the positive-ack baseline's implosion.
func BenchmarkPosAckBaseline(b *testing.B) { runExp(b, "posack", "posack@1000") }

// BenchmarkAblationHierarchy measures the §7 multi-level logger hierarchy:
// NACKs at the primary under a widespread loss, 2-level vs 3-level.
func BenchmarkAblationHierarchy(b *testing.B) {
	runExp(b, "hierarchy", "twoLevelNacks", "threeLevelNacks")
}

// BenchmarkAblationRetransChannel measures the §7 retransmission-channel
// extension against NACK recovery.
func BenchmarkAblationRetransChannel(b *testing.B) {
	runExp(b, "channel", "nacksOff", "nacksOn", "replays")
}

// BenchmarkAblationFlowControl measures the §5 flow-control extension:
// pacing advice under a congested source tail circuit.
func BenchmarkAblationFlowControl(b *testing.B) {
	runExp(b, "flow", "congestedLoss", "congestedDelayMS")
}

// BenchmarkFreshness measures the paper's headline metric: update latency
// distribution under loss, with and without recovery.
func BenchmarkFreshness(b *testing.B) {
	runExp(b, "freshness", "lbrmP99ms", "lbrmDeliveredPct", "noneDeliveredPct")
}

// --- micro/throughput benchmarks ---

// BenchmarkSimulatorMulticast measures the simulator's fan-out rate: one
// multicast to 1000 receivers over 50 sites per iteration.
func BenchmarkSimulatorMulticast(b *testing.B) {
	skipPerfUnderRace(b)
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed: 1, Sites: 50, ReceiversPerSite: 20,
		Sender: lbrm.SenderConfig{Heartbeat: lbrm.HeartbeatParams{
			HMin: time.Hour, HMax: time.Hour, Backoff: 1}},
	})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tb.Send(payload); err != nil {
			b.Fatal(err)
		}
		tb.Run(time.Second)
	}
	b.ReportMetric(float64(tb.TotalReceivers()), "receivers")
}

// BenchmarkEndToEndLossyStack pushes packets through the full protocol
// stack (4 sites × 5 receivers, 5% tail loss) and reports virtual packets
// fully delivered per wall second.
func BenchmarkEndToEndLossyStack(b *testing.B) {
	skipPerfUnderRace(b)
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed: 2, Sites: 4, ReceiversPerSite: 5,
		Sender:   lbrm.SenderConfig{Heartbeat: lbrm.HeartbeatParams{HMin: 50 * time.Millisecond, HMax: 400 * time.Millisecond, Backoff: 2}},
		Receiver: lbrm.ReceiverConfig{NackDelay: 10 * time.Millisecond},
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range tb.Sites {
		s.Site.TailDown().SetLoss(lbrm.Bernoulli{P: 0.05})
	}
	tb.Run(500 * time.Millisecond)
	payload := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tb.Send(payload); err != nil {
			b.Fatal(err)
		}
		tb.Run(100 * time.Millisecond)
	}
	tb.Run(5 * time.Second)
	b.StopTimer()
	full := 0
	for seq := uint64(1); seq <= uint64(b.N); seq++ {
		if tb.EveryoneHas(seq) {
			full++
		}
	}
	b.ReportMetric(100*float64(full)/float64(b.N), "%fully-delivered")
}

// BenchmarkHeartbeatSchedule measures the scheduler's per-event cost.
func BenchmarkHeartbeatSchedule(b *testing.B) {
	s, err := heartbeat.NewSchedule(heartbeat.DefaultParams)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%16 == 0 {
			s.OnData()
		} else {
			s.OnHeartbeat()
		}
	}
}

// BenchmarkWireRoundTrip measures encode+decode of a data packet.
func BenchmarkWireRoundTrip(b *testing.B) {
	p := wire.Packet{Type: wire.TypeData, Source: 1, Group: 1, Seq: 42,
		Payload: make([]byte, 128)}
	buf := make([]byte, 0, 256)
	var q wire.Packet
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = p.AppendMarshal(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		if err := q.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSenderHotPath measures one Send through the sender state
// machine into a discarding environment (wire encode + retention +
// heartbeat rearm), the per-update cost a DIS host pays per entity.
func BenchmarkSenderHotPath(b *testing.B) {
	skipPerfUnderRace(b)
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed: 3, Sites: 1, ReceiversPerSite: 1,
		Sender: lbrm.SenderConfig{
			Heartbeat:   lbrm.HeartbeatParams{HMin: time.Hour, HMax: time.Hour, Backoff: 1},
			RetainLimit: 1 << 30,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tb.Send(payload); err != nil {
			b.Fatal(err)
		}
		if i%1024 == 0 {
			b.StopTimer()
			// Drain deliveries outside the timed region (bounded: the
			// heartbeat chain reschedules forever, so never RunUntilIdle
			// with a live sender).
			tb.Run(time.Millisecond)
			b.StartTimer()
		}
	}
}
