package lbrm

import (
	"fmt"
	"io"
	"time"

	"lbrm/internal/core"
	"lbrm/internal/logger"
	"lbrm/internal/netsim"
	"lbrm/internal/obs"
	"lbrm/internal/pcapio"
	"lbrm/internal/transport"
)

// Simulation re-exports: the deterministic network simulator used by the
// Testbed, the experiment harness, and the examples.
type (
	// Network is the simulated internetwork (virtual time, tree topology).
	Network = netsim.Network
	// SimNode is a simulated host.
	SimNode = netsim.Node
	// Site is a simulated site (LAN behind a tail circuit).
	Site = netsim.Site
	// SiteParams configures a simulated site.
	SiteParams = netsim.SiteParams
	// LinkConfig describes one direction of a simulated link.
	LinkConfig = netsim.LinkConfig
	// Link is one direction of a simulated link.
	Link = netsim.Link
	// LossModel decides per-packet drops on a link.
	LossModel = netsim.LossModel
	// Bernoulli drops packets independently with probability P.
	Bernoulli = netsim.Bernoulli
	// GilbertElliott is a two-state burst loss model.
	GilbertElliott = netsim.GilbertElliott
	// Outages drops everything inside configured time windows.
	Outages = netsim.Outages
	// Window is a half-open time interval for Outages.
	Window = netsim.Window
	// Gate is a manually switched loss model.
	Gate = netsim.Gate
	// FirstN drops the first N packets crossing a link.
	FirstN = netsim.FirstN
	// DropSeqs drops packets by their traversal index on a link.
	DropSeqs = netsim.DropSeqs
	// Duplicate delivers some packets twice (never drops).
	Duplicate = netsim.Duplicate
	// Reorder delays some packets so later ones overtake them (never drops).
	Reorder = netsim.Reorder
	// Chain composes several loss models on one link (see Compose).
	Chain = netsim.Chain
	// DropMatching drops selected packets among those matching a filter.
	DropMatching = netsim.DropMatching
	// TapEvent describes one packet traversal of one link.
	TapEvent = netsim.TapEvent
	// TapFunc observes link traversals.
	TapFunc = netsim.TapFunc
	// PcapWriter emits pcap capture streams (see PcapTap).
	PcapWriter = pcapio.Writer
	// Cluster runs several Networks (islands) in windowed parallel
	// lockstep with deterministic cross-island merging.
	Cluster = netsim.Cluster
	// ClusterIsland is one island of a Cluster.
	ClusterIsland = netsim.Island
)

// NewNetwork returns a fresh simulated internetwork seeded for
// reproducibility.
func NewNetwork(seed int64) *Network { return netsim.New(seed) }

// NewCluster returns an empty island cluster; stride is the NodeID range
// reserved per island.
func NewCluster(seed int64, stride int) *Cluster { return netsim.NewCluster(seed, stride) }

// Compose chains loss models on one link: a packet drops if any member
// drops it, reorder delays add, the first duplicating member wins.
func Compose(models ...LossModel) *Chain { return netsim.Compose(models...) }

// PcapTap returns a tap writing traffic on links matching the name filter
// to a pcap stream (open the file in Wireshark). See netsim.PcapTap.
func PcapTap(pw *pcapio.Writer, match string, onErr func(error)) netsim.TapFunc {
	return netsim.PcapTap(pw, match, onErr)
}

// NewPcapWriter starts a pcap capture stream on w.
func NewPcapWriter(w io.Writer) (*pcapio.Writer, error) { return pcapio.NewWriter(w) }

// TestbedConfig describes the paper's canonical evaluation topology: a
// source site hosting the sender, the primary logger and its replicas, and
// N receiver sites each with a secondary logger and M receivers behind a
// shared tail circuit (§2.2.2 uses 50 sites × 20 receivers).
type TestbedConfig struct {
	// Seed makes the run reproducible.
	Seed int64
	// Group and Source identify the stream (defaults 1 and 1).
	Group  GroupID
	Source SourceID
	// Sites is the number of receiver sites (default 2).
	Sites int
	// ReceiversPerSite is the number of receivers per site (default 3).
	ReceiversPerSite int
	// NoSecondaries omits the per-site secondary loggers (the centralized
	// baseline of Figure 7a: every receiver recovers from the primary).
	NoSecondaries bool
	// Regions, when positive, inserts a regional logger tier (§7,
	// DESIGN.md §13): sites are placed round-robin under Regions region
	// routers, each hosting a tier-1 regional logger at its POP. Site
	// secondaries parent to their regional (with the other regionals as
	// re-home siblings) and receivers escalate site → region → primary.
	// Zero keeps the flat two-level deployment. Ignored when
	// NoSecondaries is set (the centralized baseline has no tree).
	Regions int
	// RegionDelay is the one-way region↔backbone delay (5 ms if zero).
	RegionDelay time.Duration
	// Replicas is the number of primary-log replicas at the source site.
	Replicas int
	// TailDelay overrides the one-way tail circuit delay.
	TailDelay time.Duration
	// TailRate sets the tail circuits' serialization rate in bits/s.
	TailRate int64
	// Sender, Receiver, Secondary, Primary season the respective configs;
	// identity and address fields are filled in by the builder.
	Sender    SenderConfig
	Receiver  ReceiverConfig
	Secondary SecondaryConfig
	Primary   PrimaryConfig
	// ConfigureReceiver, when set, customizes each receiver's config
	// (e.g. per-receiver callbacks) after the common fields are filled in
	// and before the testbed's delivery accounting is attached.
	ConfigureReceiver func(site, idx int, cfg *ReceiverConfig)
	// Tap, when set, is installed on the network before the handlers
	// start, so traffic sent from Handler.Start (e.g. the quorum ring
	// installation) is observed too. Net.SetTap can replace it later.
	Tap TapFunc
}

// Testbed is a fully wired LBRM deployment inside the simulator.
type Testbed struct {
	Net    *Network
	Group  GroupID
	Source SourceID

	Sender     *Sender
	SenderNode *SimNode

	Primary      *PrimaryLogger
	PrimaryNode  *SimNode
	Replicas     []*PrimaryLogger
	ReplicaNodes []*SimNode

	SourceSite *Site
	Sites      []*TestbedSite
	Regions    []*TestbedRegion

	// Effective configs as wired (identity and address fields filled in),
	// retained so chaos tests can rebuild a handler after Crash/Restart
	// with the exact configuration the dead incarnation ran.
	SenderCfg   SenderConfig
	PrimaryCfg  PrimaryConfig
	ReplicaCfgs []PrimaryConfig

	// Delivered counts OnData events across all receivers (in addition to
	// any OnData the caller configured).
	Delivered map[uint64]int
}

// TestbedSite is one receiver site.
type TestbedSite struct {
	Site          *Site
	Secondary     *SecondaryLogger
	SecondaryNode *SimNode
	Receivers     []*Receiver
	ReceiverNodes []*SimNode

	// Region is the index into Testbed.Regions this site sits under, or
	// -1 in a flat deployment.
	Region int

	// SecondaryCfg and ReceiverCfgs mirror Testbed's retained configs.
	SecondaryCfg SecondaryConfig
	ReceiverCfgs []ReceiverConfig
}

// TestbedRegion is one regional logger tier node (Regions > 0).
type TestbedRegion struct {
	Router     *netsim.Router
	Logger     *SecondaryLogger
	LoggerNode *SimNode

	// LoggerCfg mirrors Testbed's retained configs (chaos restarts).
	LoggerCfg SecondaryConfig
}

// NewTestbed builds and starts the deployment. The virtual clock has not
// advanced yet: schedule traffic and call Run.
func NewTestbed(cfg TestbedConfig) (*Testbed, error) {
	if cfg.Group == 0 {
		cfg.Group = 1
	}
	if cfg.Source == 0 {
		cfg.Source = 1
	}
	if cfg.Sites == 0 {
		cfg.Sites = 2
	}
	if cfg.ReceiversPerSite == 0 {
		cfg.ReceiversPerSite = 3
	}

	tb := &Testbed{
		Net:       netsim.New(cfg.Seed),
		Group:     cfg.Group,
		Source:    cfg.Source,
		Delivered: make(map[uint64]int),
	}

	srcSite := tb.Net.NewSite(netsim.SiteParams{
		Name: "source-site", TailDelay: cfg.TailDelay, TailRate: cfg.TailRate,
	})
	tb.SourceSite = srcSite

	// Primary and replicas: allocate the nodes first so every logger can be
	// configured with the others' addresses — each replica lists its peer
	// replicas (promotion backfill, §2.2.3) and the acting primary lists
	// its replication targets.
	pcfg := cfg.Primary
	pcfg.Group = cfg.Group
	tb.PrimaryNode = srcSite.NewHost("primary", nil)
	for i := 0; i < cfg.Replicas; i++ {
		tb.ReplicaNodes = append(tb.ReplicaNodes, srcSite.NewHost(fmt.Sprintf("replica%d", i), nil))
	}
	for i, node := range tb.ReplicaNodes {
		rcfg := pcfg
		rcfg.Replica = true
		rcfg.Replicas = nil
		rcfg.Peers = append([]transport.Addr(nil), pcfg.Peers...)
		for j, other := range tb.ReplicaNodes {
			if j != i {
				rcfg.Peers = append(rcfg.Peers, other.Addr())
			}
		}
		// One sink per handler, retained in the config: a chaos restart
		// rebuilds the handler from the same config, so its metrics keep
		// accumulating across incarnations (DESIGN.md §9).
		if rcfg.Obs == nil {
			rcfg.Obs = obs.NewSink()
		}
		rep := logger.NewPrimary(rcfg)
		node.SetHandler(rep)
		tb.Replicas = append(tb.Replicas, rep)
		tb.ReplicaCfgs = append(tb.ReplicaCfgs, rcfg)
	}
	pcfg.Replicas = append([]transport.Addr(nil), pcfg.Replicas...)
	for _, rn := range tb.ReplicaNodes {
		pcfg.Replicas = append(pcfg.Replicas, rn.Addr())
	}
	if pcfg.Obs == nil {
		pcfg.Obs = obs.NewSink()
	}
	tb.Primary = logger.NewPrimary(pcfg)
	tb.PrimaryNode.SetHandler(tb.Primary)
	tb.PrimaryCfg = pcfg

	scfg := cfg.Sender
	scfg.Source = cfg.Source
	scfg.Group = cfg.Group
	scfg.Primary = tb.PrimaryNode.Addr()
	for _, rn := range tb.ReplicaNodes {
		scfg.Replicas = append(scfg.Replicas, rn.Addr())
	}
	if scfg.Obs == nil {
		scfg.Obs = obs.NewSink()
	}
	sender, err := core.NewSender(scfg)
	if err != nil {
		return nil, err
	}
	tb.Sender = sender
	tb.SenderNode = srcSite.NewHost("sender", sender)
	tb.SenderCfg = scfg

	// Regional tier (Regions > 0): allocate every regional node before
	// configuring any of them, so each site secondary can list the other
	// regions' loggers as re-home siblings.
	if cfg.NoSecondaries {
		cfg.Regions = 0
	}
	for r := 0; r < cfg.Regions; r++ {
		router := tb.Net.NewRegion(fmt.Sprintf("region%d", r+1), cfg.RegionDelay)
		node := tb.Net.NewRegionHost(router, fmt.Sprintf("region%d/logger", r+1), nil)
		tb.Regions = append(tb.Regions, &TestbedRegion{Router: router, LoggerNode: node})
	}
	for _, reg := range tb.Regions {
		regCfg := cfg.Secondary
		regCfg.Group = cfg.Group
		regCfg.Primary = tb.PrimaryNode.Addr()
		regCfg.Tier = 1
		regCfg.TreeEpoch = 1
		if regCfg.Obs == nil {
			regCfg.Obs = obs.NewSink()
		}
		reg.Logger = logger.NewSecondary(regCfg)
		reg.LoggerNode.SetHandler(reg.Logger)
		reg.LoggerCfg = regCfg
	}

	for i := 0; i < cfg.Sites; i++ {
		region := -1
		params := netsim.SiteParams{
			Name:      fmt.Sprintf("site%d", i+1),
			TailDelay: cfg.TailDelay,
			TailRate:  cfg.TailRate,
		}
		if cfg.Regions > 0 {
			region = i % cfg.Regions
			params.Parent = tb.Regions[region].Router
		}
		site := tb.Net.NewSite(params)
		ts := &TestbedSite{Site: site, Region: region}
		var secAddr, regAddr transport.Addr
		if region >= 0 {
			regAddr = tb.Regions[region].LoggerNode.Addr()
		}
		if !cfg.NoSecondaries {
			secCfg := cfg.Secondary
			secCfg.Group = cfg.Group
			secCfg.Primary = tb.PrimaryNode.Addr()
			if region >= 0 {
				secCfg.Parents = []transport.Addr{regAddr}
				for ri, reg := range tb.Regions {
					if ri != region {
						secCfg.Siblings = append(secCfg.Siblings, reg.LoggerNode.Addr())
					}
				}
			}
			if secCfg.Obs == nil {
				secCfg.Obs = obs.NewSink()
			}
			ts.Secondary = logger.NewSecondary(secCfg)
			ts.SecondaryNode = site.NewHost(fmt.Sprintf("site%d/logger", i+1), ts.Secondary)
			secAddr = ts.SecondaryNode.Addr()
			ts.SecondaryCfg = secCfg
		}
		for j := 0; j < cfg.ReceiversPerSite; j++ {
			rCfg := cfg.Receiver
			rCfg.Group = cfg.Group
			rCfg.Heartbeat = scfg.Heartbeat
			rCfg.Primary = tb.PrimaryNode.Addr()
			// Testbeds exist to measure: keep the per-seq recovery-latency
			// record that experiments read through RecoveryTimes.
			rCfg.TrackRecoveryTimes = true
			if secAddr != nil && !rCfg.Discover {
				rCfg.Secondary = secAddr
				if regAddr != nil {
					// Escalation chain: site secondary (tier 0), own
					// regional (tier 1), then the primary.
					rCfg.Loggers = []transport.Addr{secAddr, regAddr}
				}
			}
			if cfg.ConfigureReceiver != nil {
				cfg.ConfigureReceiver(i, j, &rCfg)
			}
			if rCfg.Obs == nil {
				rCfg.Obs = obs.NewSink()
			}
			userOnData := rCfg.OnData
			rCfg.OnData = func(e Event) {
				tb.Delivered[e.Seq]++
				if userOnData != nil {
					userOnData(e)
				}
			}
			rcv := core.NewReceiver(rCfg)
			node := site.NewHost(fmt.Sprintf("site%d/rcv%d", i+1, j), rcv)
			ts.Receivers = append(ts.Receivers, rcv)
			ts.ReceiverNodes = append(ts.ReceiverNodes, node)
			ts.ReceiverCfgs = append(ts.ReceiverCfgs, rCfg)
		}
		tb.Sites = append(tb.Sites, ts)
	}

	if cfg.Tap != nil {
		tb.Net.SetTap(cfg.Tap)
	}
	tb.Net.Start()
	return tb, nil
}

// Run advances virtual time by d.
func (tb *Testbed) Run(d time.Duration) { tb.Net.RunFor(d) }

// RunUntilIdle drains all pending events. Caution: a live sender's
// heartbeat chain reschedules forever, so this only returns after every
// sender in the network has been stopped — use Run(d) to advance a
// deployment with active senders.
func (tb *Testbed) RunUntilIdle() { tb.Net.RunUntilIdle() }

// Send multicasts one payload from the testbed's source.
func (tb *Testbed) Send(payload []byte) (uint64, error) { return tb.Sender.Send(payload) }

// StopAll stops every protocol component (sender, loggers, replicas,
// receivers); afterwards RunUntilIdle terminates.
func (tb *Testbed) StopAll() {
	tb.Sender.Stop()
	tb.Primary.Stop()
	for _, rep := range tb.Replicas {
		rep.Stop()
	}
	for _, reg := range tb.Regions {
		reg.Logger.Stop()
	}
	for _, s := range tb.Sites {
		if s.Secondary != nil {
			s.Secondary.Stop()
		}
		for _, r := range s.Receivers {
			r.Stop()
		}
	}
}

// TotalReceivers returns the receiver population.
func (tb *Testbed) TotalReceivers() int {
	n := 0
	for _, s := range tb.Sites {
		n += len(s.Receivers)
	}
	return n
}

// DeliveredCount returns how many receivers have delivered seq.
func (tb *Testbed) DeliveredCount(seq uint64) int { return tb.Delivered[seq] }

// EveryoneHas reports whether every receiver has delivered seq.
func (tb *Testbed) EveryoneHas(seq uint64) bool {
	return tb.Delivered[seq] == tb.TotalReceivers()
}
