package lbrm_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"lbrm"
	"lbrm/internal/transport"
	"lbrm/internal/transport/transporttest"
	"lbrm/internal/wire"
)

// randomValidPacket builds a syntactically valid LBRM packet of any type
// with adversarial field values (random seqs, epochs, probabilities,
// ranges) — the decodable-but-hostile input space.
func randomValidPacket(rng *rand.Rand) wire.Packet {
	types := []wire.Type{
		wire.TypeData, wire.TypeHeartbeat, wire.TypeNack, wire.TypeRetrans,
		wire.TypeAck, wire.TypeAckerSelect, wire.TypeAckerResponse,
		wire.TypeSizeProbe, wire.TypeSizeProbeResponse,
		wire.TypeDiscoveryQuery, wire.TypeDiscoveryReply, wire.TypeLogSync,
		wire.TypeLogSyncAck, wire.TypeSourceAck, wire.TypePrimaryQuery,
		wire.TypePrimaryRedirect, wire.TypeLogStateQuery,
		wire.TypeLogStateReply, wire.TypePromote,
	}
	p := wire.Packet{
		Type:   types[rng.Intn(len(types))],
		Source: wire.SourceID(rng.Intn(3) + 1), // mostly "our" stream
		Group:  1,
		Seq:    rng.Uint64() >> uint(rng.Intn(60)), // skew small
		Epoch:  uint32(rng.Intn(5)),
	}
	if rng.Intn(4) == 0 {
		p.Flags |= wire.FlagRetransmission
	}
	switch p.Type {
	case wire.TypeData, wire.TypeRetrans, wire.TypeLogSync:
		p.Payload = make([]byte, rng.Intn(64))
	case wire.TypeHeartbeat:
		p.HeartbeatIdx = uint32(rng.Intn(10))
		if rng.Intn(3) == 0 {
			p.Flags |= wire.FlagInlineData
			p.Payload = make([]byte, rng.Intn(32))
		}
	case wire.TypeNack:
		n := rng.Intn(4) + 1
		for i := 0; i < n; i++ {
			from := rng.Uint64() >> uint(rng.Intn(60))
			p.Ranges = append(p.Ranges, wire.SeqRange{
				From: from, To: from + uint64(rng.Intn(1<<uint(rng.Intn(20)))),
			})
		}
	case wire.TypeAckerSelect:
		p.PAck = rng.Float64()
		p.K = uint16(rng.Intn(50))
	case wire.TypeSizeProbe:
		p.ProbeID = rng.Uint32()
		p.PAck = rng.Float64()
	case wire.TypeSizeProbeResponse:
		p.ProbeID = rng.Uint32()
	case wire.TypeSourceAck:
		p.ReplicaSeq = rng.Uint64() >> uint(rng.Intn(60))
	case wire.TypeDiscoveryReply, wire.TypePrimaryRedirect:
		if rng.Intn(2) == 0 {
			p.Addr = "fake:somewhere"
		} else {
			p.Addr = "garbage that does not parse"
		}
	}
	return p
}

// TestHandlersSurviveAdversarialPackets hammers every protocol component
// with thousands of hostile-but-decodable packets from random peers,
// interleaved with time advancement. The invariant is simply survival: no
// panics, no runaway state (timers drain once the noise stops and the
// component is stopped).
func TestHandlersSurviveAdversarialPackets(t *testing.T) {
	build := func(name string) []transport.Handler {
		sender, err := lbrm.NewSender(lbrm.SenderConfig{
			Source: 1, Group: 1,
			Heartbeat: lbrm.HeartbeatParams{HMin: 20 * time.Millisecond, HMax: 160 * time.Millisecond, Backoff: 2},
			Primary:   transporttest.Addr("primary"),
			Replicas:  []lbrm.Addr{transporttest.Addr("rep")},
			StatAck: lbrm.StatAckConfig{Enabled: true, K: 3,
				GroupSize:            lbrm.GroupSizeConfig{Initial: 5},
				RTT:                  lbrm.RTTConfig{Initial: 50 * time.Millisecond},
				FlowControl:          true,
				NackRemcastThreshold: 2,
			},
			RetransChannel:     2,
			FailoverTimeout:    300 * time.Millisecond,
			InlineHeartbeatMax: 32,
		})
		if err != nil {
			t.Fatal(err)
		}
		receiver := lbrm.NewReceiver(lbrm.ReceiverConfig{
			Group:     1,
			Secondary: transporttest.Addr("sec"),
			Primary:   transporttest.Addr("primary"),
			Ordered:   true, OrderedBufferMax: 32,
			RetransChannel: 2,
			NackDelay:      5 * time.Millisecond,
			RequestTimeout: 30 * time.Millisecond,
		})
		secondary := lbrm.NewSecondaryLogger(lbrm.SecondaryConfig{
			Group: 1, Primary: transporttest.Addr("primary"),
			Retention: lbrm.Retention{MaxPackets: 16},
			NackDelay: 5 * time.Millisecond,
		})
		primary := lbrm.NewPrimaryLogger(lbrm.PrimaryConfig{
			Group:     1,
			Replicas:  []lbrm.Addr{transporttest.Addr("rep")},
			Retention: lbrm.Retention{MaxPackets: 16, MaxAge: time.Second},
			SyncRetry: 50 * time.Millisecond,
		})
		replica := lbrm.NewPrimaryLogger(lbrm.PrimaryConfig{Group: 1, Replica: true})
		return []transport.Handler{sender, receiver, secondary, primary, replica}
	}

	peers := []transporttest.Addr{"primary", "sec", "rep", "rcv1", "rcv2", "stranger"}
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			handlers := build(t.Name())
			for hi, h := range handlers {
				env := transporttest.NewEnv(fmt.Sprintf("h%d", hi))
				h.Start(env)
				for i := 0; i < 1500; i++ {
					p := randomValidPacket(rng)
					buf, err := p.Marshal()
					if err != nil {
						t.Fatalf("generator built invalid packet: %v", err)
					}
					h.Recv(peers[rng.Intn(len(peers))], buf)
					if i%50 == 0 {
						env.Advance(time.Duration(rng.Intn(100)) * time.Millisecond)
						env.Sents = nil
						env.Mcasts = nil
					}
				}
				env.Advance(5 * time.Second)
			}
		})
	}
}
