package lbrm_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"lbrm"
)

// TestEndToEndInvariantsProperty drives randomized deployments (topology,
// loss rates, heartbeat cadence all seed-derived) and checks the protocol
// invariants that must hold under ANY loss pattern:
//
//  1. no duplicate deliveries to the application (per receiver, per seq);
//  2. every sequence number is eventually either delivered or explicitly
//     abandoned (OnLost) at every receiver — silent holes are bugs;
//  3. payload integrity: what arrives is what was sent;
//  4. the sender's retention drains once the primary has everything.
func TestEndToEndInvariantsProperty(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			sites := 1 + rng.Intn(3)
			perSite := 1 + rng.Intn(3)
			lossPct := rng.Float64() * 0.25
			ordered := rng.Intn(2) == 0

			type rcvState struct {
				seen      map[uint64]int
				abandoned map[uint64]bool
				lastSeq   uint64
				orderBad  int
			}
			var states []*rcvState

			tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
				Seed: seed, Sites: sites, ReceiversPerSite: perSite,
				Sender: lbrm.SenderConfig{Heartbeat: lbrm.HeartbeatParams{
					HMin:    time.Duration(30+rng.Intn(60)) * time.Millisecond,
					HMax:    400 * time.Millisecond,
					Backoff: 2,
				}},
				Receiver: lbrm.ReceiverConfig{
					Ordered:   ordered,
					NackDelay: time.Duration(5+rng.Intn(20)) * time.Millisecond,
				},
				ConfigureReceiver: func(site, idx int, cfg *lbrm.ReceiverConfig) {
					st := &rcvState{seen: map[uint64]int{}, abandoned: map[uint64]bool{}}
					states = append(states, st)
					cfg.OnData = func(e lbrm.Event) {
						st.seen[e.Seq]++
						if want := fmt.Sprintf("payload-%d", e.Seq); string(e.Payload) != want {
							t.Errorf("seq %d payload = %q, want %q", e.Seq, e.Payload, want)
						}
						if ordered && e.Seq <= st.lastSeq {
							st.orderBad++
						}
						st.lastSeq = e.Seq
					}
					cfg.OnLost = func(k lbrm.StreamKey, rg lbrm.SeqRange) {
						for q := rg.From; q <= rg.To; q++ {
							st.abandoned[q] = true
						}
					}
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range tb.Sites {
				s.Site.TailDown().SetLoss(lbrm.Bernoulli{P: lossPct})
			}
			tb.Run(500 * time.Millisecond) // contact established
			const n = 40
			for i := 1; i <= n; i++ {
				if _, err := tb.Send([]byte(fmt.Sprintf("payload-%d", i))); err != nil {
					t.Fatal(err)
				}
				tb.Run(time.Duration(20+rng.Intn(100)) * time.Millisecond)
			}
			tb.Run(20 * time.Second) // drain all recovery machinery

			for ri, st := range states {
				for seq := uint64(1); seq <= n; seq++ {
					switch st.seen[seq] {
					case 0:
						if !st.abandoned[seq] {
							t.Errorf("receiver %d: seq %d neither delivered nor abandoned (silent hole)", ri, seq)
						}
					case 1:
						// delivered exactly once: good
					default:
						t.Errorf("receiver %d: seq %d delivered %d times", ri, seq, st.seen[seq])
					}
				}
				if st.orderBad > 0 {
					t.Errorf("receiver %d: %d ordered-mode violations", ri, st.orderBad)
				}
			}
			if tb.Sender.Retained() != 0 {
				t.Errorf("sender retention = %d after drain (primary on lossless source LAN)", tb.Sender.Retained())
			}
		})
	}
}

// TestLoggersConvergeProperty: under the same randomized regime, every
// secondary logger's store ends contiguous through the last sequence
// number (the logging service itself must self-heal).
func TestLoggersConvergeProperty(t *testing.T) {
	for seed := int64(20); seed < 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			sites := 1 + rng.Intn(4)
			lossPct := rng.Float64() * 0.2
			tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
				Seed: seed, Sites: sites, ReceiversPerSite: 1,
				Sender:    lbrm.SenderConfig{Heartbeat: fastHB},
				Secondary: lbrm.SecondaryConfig{NackDelay: 15 * time.Millisecond},
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range tb.Sites {
				s.Site.TailDown().SetLoss(lbrm.Bernoulli{P: lossPct})
			}
			tb.Run(300 * time.Millisecond)
			const n = 30
			for i := 1; i <= n; i++ {
				tb.Send([]byte("x"))
				tb.Run(60 * time.Millisecond)
			}
			tb.Run(15 * time.Second)
			key := lbrm.LogStreamKey{Source: tb.Source, Group: tb.Group}
			if got := tb.Primary.Contiguous(key); got != n {
				t.Fatalf("primary contiguous = %d, want %d", got, n)
			}
			for i, s := range tb.Sites {
				st := s.Secondary.Store(key)
				if st == nil || st.Contiguous() != n {
					var c uint64
					if st != nil {
						c = st.Contiguous()
					}
					t.Errorf("site %d secondary contiguous = %d, want %d", i+1, c, n)
				}
			}
		})
	}
}
