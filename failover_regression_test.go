package lbrm_test

import (
	"testing"
	"time"

	"lbrm"
	"lbrm/internal/logger"
	"lbrm/internal/wire"
)

// isStateReply matches serialized LogStateReply packets (for DropMatching).
func isStateReply(data []byte) bool {
	var p wire.Packet
	return p.Unmarshal(data) == nil && p.Type == wire.TypeLogStateReply
}

// TestFailoverPromotesLaggedReplicaAndBackfills: the sender can promote a
// replica that is NOT the most up-to-date (here the up-to-date replica's
// state reply is lost during the failover probe). The promoted replica's
// log then ends below the sender's release watermark — a hole the sender
// can no longer fill. The promoted replica must backfill the gap from its
// peer replicas before acknowledging, or receivers NACKing into the hole
// would be stranded.
func TestFailoverPromotesLaggedReplicaAndBackfills(t *testing.T) {
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed: 21, Sites: 1, ReceiversPerSite: 2, Replicas: 2,
		Sender: lbrm.SenderConfig{
			Heartbeat:       fastHB,
			FailoverTimeout: 400 * time.Millisecond,
			FailoverWait:    100 * time.Millisecond,
		},
		Secondary: lbrm.SecondaryConfig{NackDelay: 10 * time.Millisecond},
		Receiver:  lbrm.ReceiverConfig{NackDelay: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	key := logger.StreamKey{Source: tb.Source, Group: tb.Group}

	// Replica 0 misses all replication traffic while packets 1..5 are sent,
	// acknowledged by the primary, and released from the sender's buffer.
	lag := &lbrm.Gate{Down: true}
	tb.ReplicaNodes[0].DownLink().SetLoss(lag)
	for i := 0; i < 5; i++ {
		tb.Send([]byte("released"))
		tb.Run(100 * time.Millisecond)
	}
	tb.Run(time.Second)
	if tb.Sender.Retained() != 0 {
		t.Fatalf("retention not drained before failure: %d", tb.Sender.Retained())
	}
	if got := tb.Replicas[1].Contiguous(key); got != 5 {
		t.Fatalf("up-to-date replica contiguous = %d, want 5", got)
	}
	if got := tb.Replicas[0].Contiguous(key); got != 0 {
		t.Fatalf("lagged replica contiguous = %d, want 0", got)
	}

	// The primary dies; the lagged replica's link heals (the dead primary
	// can no longer resync it); and the up-to-date replica's first state
	// reply — its answer to the sender's failover probe — is lost, so the
	// sender hears only the lagged replica and promotes it.
	dead := &lbrm.Gate{Down: true}
	tb.PrimaryNode.DownLink().SetLoss(dead)
	tb.PrimaryNode.UpLink().SetLoss(dead)
	lag.Down = false
	tb.ReplicaNodes[1].UpLink().SetLoss(&lbrm.DropMatching{
		Match: isStateReply, Indices: map[int]bool{1: true},
	})

	tb.Send([]byte("six")) // unacked backlog arms the failover check
	tb.Run(4 * time.Second)

	if got := tb.Sender.Stats().Failovers; got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}
	if tb.Replicas[0].IsReplica() {
		t.Fatal("lagged replica was not promoted")
	}
	if !tb.Replicas[1].IsReplica() {
		t.Fatal("up-to-date replica unexpectedly promoted")
	}
	st := tb.Replicas[0].Stats()
	if st.BackfillsStarted != 1 {
		t.Fatalf("BackfillsStarted = %d, want 1", st.BackfillsStarted)
	}
	if st.BackfillNacks == 0 {
		t.Fatal("promoted replica never NACKed its peer for the hole")
	}
	if st.BackfillSkipped != 0 {
		t.Fatalf("BackfillSkipped = %d: gave up on a hole a live peer held", st.BackfillSkipped)
	}
	// The backfilled log is whole: 1..5 from the peer, 6 from the sender's
	// retention push.
	if got := tb.Replicas[0].Contiguous(key); got != 6 {
		t.Fatalf("promoted replica contiguous = %d, want 6", got)
	}
	if tb.Sender.Retained() != 0 {
		t.Fatalf("retention stuck after failover: %d", tb.Sender.Retained())
	}

	// And the promoted primary actually serves from the backfilled log: a
	// site-wide loss of the next packet heals through it.
	tb.Sites[0].Site.TailDown().SetLoss(&lbrm.FirstN{N: 1})
	tb.Send([]byte("seven"))
	tb.Run(3 * time.Second)
	if !tb.EveryoneHas(7) {
		t.Fatalf("seq 7 delivered to %d/%d via promoted primary",
			tb.DeliveredCount(7), tb.TotalReceivers())
	}
}

// TestFailoverNoSpuriousRefireWhilePromotedReplicaBackfills: found by the
// chaos harness (every crash-primary seed reported one failover too many).
// Completing a failover did not restart the sender's ack-idle clock, so the
// next liveness check still measured idleness from the dead primary's last
// ack and immediately declared the just-promoted replica dead too — here
// that second spurious failover would promote the OTHER replica while the
// first was mid-backfill. The probe reply that won the election is proof of
// liveness; the idle clock must restart at promotion.
func TestFailoverNoSpuriousRefireWhilePromotedReplicaBackfills(t *testing.T) {
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed: 100, Sites: 1, ReceiversPerSite: 1, Replicas: 2,
		Sender: lbrm.SenderConfig{
			Heartbeat:       fastHB,
			FailoverTimeout: 400 * time.Millisecond,
			FailoverWait:    100 * time.Millisecond,
		},
		Primary: lbrm.PrimaryConfig{RequestTimeout: 450 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	key := logger.StreamKey{Source: tb.Source, Group: tb.Group}

	// Packets 1..5 are released while replica 0 lags behind a dead link.
	lag := &lbrm.Gate{Down: true}
	tb.ReplicaNodes[0].DownLink().SetLoss(lag)
	for i := 0; i < 5; i++ {
		tb.Send([]byte("released"))
		tb.Run(100 * time.Millisecond)
	}
	tb.Run(time.Second)

	// Primary dies; the lagged replica wins the election because the
	// up-to-date replica's probe reply (match 0) is lost. Its backfill
	// answer (match 1) is lost too, so the promoted replica stays silent —
	// no source ack — until its first backfill retry succeeds, well past
	// the sender's first post-failover liveness check.
	dead := &lbrm.Gate{Down: true}
	tb.PrimaryNode.DownLink().SetLoss(dead)
	tb.PrimaryNode.UpLink().SetLoss(dead)
	lag.Down = false
	tb.ReplicaNodes[1].UpLink().SetLoss(&lbrm.DropMatching{
		Match: isStateReply, Indices: map[int]bool{0: true, 1: true},
	})

	tb.Send([]byte("six"))
	tb.Run(6 * time.Second)

	if got := tb.Sender.Stats().Failovers; got != 1 {
		t.Fatalf("failovers = %d, want exactly 1 (spurious re-fire)", got)
	}
	if tb.Replicas[0].IsReplica() {
		t.Fatal("elected replica was not promoted")
	}
	if !tb.Replicas[1].IsReplica() {
		t.Fatal("second replica promoted by a spurious failover")
	}
	if got := tb.Replicas[0].Contiguous(key); got != 6 {
		t.Fatalf("promoted replica contiguous = %d, want 6", got)
	}
	if tb.Sender.Retained() != 0 {
		t.Fatalf("retention stuck: %d", tb.Sender.Retained())
	}
}

// TestFailoverBackfillSkipsUnrecoverableHole: a lagged replica promoted with
// no peer replicas cannot recover the released span. It must declare the
// hole unrecoverable and advance its watermark past it — wedging the
// acknowledgement (and with it the sender's retention buffer) forever would
// trade a bounded loss for an unbounded leak.
func TestFailoverBackfillSkipsUnrecoverableHole(t *testing.T) {
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed: 22, Sites: 1, ReceiversPerSite: 2, Replicas: 1,
		Sender: lbrm.SenderConfig{
			Heartbeat:       fastHB,
			FailoverTimeout: 400 * time.Millisecond,
			FailoverWait:    100 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	key := logger.StreamKey{Source: tb.Source, Group: tb.Group}

	lag := &lbrm.Gate{Down: true}
	tb.ReplicaNodes[0].DownLink().SetLoss(lag)
	for i := 0; i < 3; i++ {
		tb.Send([]byte("released"))
		tb.Run(100 * time.Millisecond)
	}
	tb.Run(time.Second)
	if tb.Sender.Retained() != 0 {
		t.Fatal("retention not drained before failure")
	}

	dead := &lbrm.Gate{Down: true}
	tb.PrimaryNode.DownLink().SetLoss(dead)
	tb.PrimaryNode.UpLink().SetLoss(dead)
	lag.Down = false

	tb.Send([]byte("four"))
	tb.Run(4 * time.Second)

	if got := tb.Sender.Stats().Failovers; got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}
	st := tb.Replicas[0].Stats()
	if st.BackfillsStarted != 0 {
		t.Fatalf("BackfillsStarted = %d with no peers, want 0", st.BackfillsStarted)
	}
	if st.BackfillSkipped != 3 {
		t.Fatalf("BackfillSkipped = %d, want 3 (seqs 1..3)", st.BackfillSkipped)
	}
	// The watermark advanced past the hole and the sender's buffer drained.
	if got := tb.Replicas[0].Contiguous(key); got != 4 {
		t.Fatalf("promoted replica contiguous = %d, want 4", got)
	}
	if tb.Sender.Retained() != 0 {
		t.Fatalf("retention wedged on an unrecoverable hole: %d", tb.Sender.Retained())
	}
}

// TestSecondaryRedirectRetargetsInFlightFetch: a secondary with a NACK
// retry episode in flight against a dead primary must re-target the episode
// when the PrimaryRedirect arrives — immediately, with its retry budget
// reset — rather than burning MaxRetries against an address that will never
// answer.
func TestSecondaryRedirectRetargetsInFlightFetch(t *testing.T) {
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed: 23, Sites: 1, ReceiversPerSite: 3, Replicas: 1,
		Sender: lbrm.SenderConfig{
			Heartbeat:       fastHB,
			FailoverTimeout: 400 * time.Millisecond,
			FailoverWait:    100 * time.Millisecond,
		},
		Secondary: lbrm.SecondaryConfig{
			NackDelay:      10 * time.Millisecond,
			RequestTimeout: 300 * time.Millisecond,
		},
		Receiver: lbrm.ReceiverConfig{NackDelay: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.Send([]byte("warm"))
	tb.Run(500 * time.Millisecond)

	// The primary dies, and the next packet is lost on the site's tail
	// circuit: the whole site (secondary included) misses it and the
	// secondary's fetch episode targets a dead host.
	dead := &lbrm.Gate{Down: true}
	tb.PrimaryNode.DownLink().SetLoss(dead)
	tb.PrimaryNode.UpLink().SetLoss(dead)
	tb.Sites[0].Site.TailDown().SetLoss(&lbrm.FirstN{N: 1})
	tb.Send([]byte("lost"))
	tb.Run(5 * time.Second)

	if got := tb.Sender.Stats().Failovers; got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}
	sec := tb.Sites[0].Secondary.Stats()
	if sec.RedirectsFollowed != 1 {
		t.Fatalf("RedirectsFollowed = %d, want 1", sec.RedirectsFollowed)
	}
	if sec.FetchesAbandoned != 0 {
		t.Fatalf("secondary abandoned %d fetches despite a live new primary", sec.FetchesAbandoned)
	}
	if !tb.EveryoneHas(2) {
		t.Fatalf("seq 2 delivered to %d/%d after redirect",
			tb.DeliveredCount(2), tb.TotalReceivers())
	}
}

// TestReceiverRedirectRetargetsInFlightRetry: receivers recovering straight
// from the primary (no secondaries) must re-target an in-flight retry when
// the redirect arrives. PrimaryRetries is set high enough that escalation
// to a source query cannot rescue the episode within the test horizon: if
// recovery succeeds, it succeeded through the redirect.
func TestReceiverRedirectRetargetsInFlightRetry(t *testing.T) {
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed: 24, Sites: 1, ReceiversPerSite: 2, Replicas: 1,
		NoSecondaries: true,
		Sender: lbrm.SenderConfig{
			Heartbeat:       fastHB,
			FailoverTimeout: 400 * time.Millisecond,
			FailoverWait:    100 * time.Millisecond,
		},
		Receiver: lbrm.ReceiverConfig{
			NackDelay:      10 * time.Millisecond,
			PrimaryRetries: 50,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.Send([]byte("warm"))
	tb.Run(500 * time.Millisecond)

	dead := &lbrm.Gate{Down: true}
	tb.PrimaryNode.DownLink().SetLoss(dead)
	tb.PrimaryNode.UpLink().SetLoss(dead)
	tb.Sites[0].Site.TailDown().SetLoss(&lbrm.FirstN{N: 1})
	tb.Send([]byte("lost"))
	tb.Run(5 * time.Second)

	if got := tb.Sender.Stats().Failovers; got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}
	if !tb.EveryoneHas(2) {
		t.Fatalf("seq 2 delivered to %d/%d after redirect",
			tb.DeliveredCount(2), tb.TotalReceivers())
	}
	for i, r := range tb.Sites[0].Receivers {
		st := r.Stats()
		if st.RangesAbandoned != 0 {
			t.Fatalf("receiver %d abandoned %d ranges despite a live new primary",
				i, st.RangesAbandoned)
		}
		if st.PrimaryQueries != 0 {
			t.Fatalf("receiver %d fell back to a source query; redirect should have re-targeted the retry", i)
		}
	}
}

// TestReceiverRedirectDuringDiscovery: a receiver still running logger
// discovery (which will find nothing — there are no secondaries) recovers
// through the primary; primary churn during that window must not strand it.
func TestReceiverRedirectDuringDiscovery(t *testing.T) {
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed: 25, Sites: 1, ReceiversPerSite: 2, Replicas: 1,
		NoSecondaries: true,
		Sender: lbrm.SenderConfig{
			Heartbeat:       fastHB,
			FailoverTimeout: 400 * time.Millisecond,
			FailoverWait:    100 * time.Millisecond,
		},
		Receiver: lbrm.ReceiverConfig{
			NackDelay:        10 * time.Millisecond,
			PrimaryRetries:   50,
			Discover:         true,
			DiscoveryTimeout: 2 * time.Second, // still discovering during the churn
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.Send([]byte("warm"))
	tb.Run(100 * time.Millisecond)

	dead := &lbrm.Gate{Down: true}
	tb.PrimaryNode.DownLink().SetLoss(dead)
	tb.PrimaryNode.UpLink().SetLoss(dead)
	tb.Sites[0].Site.TailDown().SetLoss(&lbrm.FirstN{N: 1})
	tb.Send([]byte("lost"))
	tb.Run(6 * time.Second)

	if got := tb.Sender.Stats().Failovers; got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}
	if !tb.EveryoneHas(2) {
		t.Fatalf("seq 2 delivered to %d/%d (redirect during discovery)",
			tb.DeliveredCount(2), tb.TotalReceivers())
	}
	for i, r := range tb.Sites[0].Receivers {
		if st := r.Stats(); st.RangesAbandoned != 0 {
			t.Fatalf("receiver %d abandoned %d ranges", i, st.RangesAbandoned)
		}
	}
}
