package lbrm_test

import (
	"fmt"
	"time"

	"lbrm"
)

// ExampleNewTestbed builds the paper's canonical deployment in the
// deterministic simulator, loses a packet on a site's tail circuit, and
// shows the logging hierarchy repairing it.
func ExampleNewTestbed() {
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed:             1,
		Sites:            2,
		ReceiversPerSite: 3,
		Sender: lbrm.SenderConfig{
			Heartbeat: lbrm.DefaultHeartbeat, // 250ms → 32s, backoff 2
		},
	})
	if err != nil {
		panic(err)
	}
	tb.Send([]byte("bridge intact"))
	tb.Run(time.Second)

	// Site 1's tail circuit drops the next update: its logger and all
	// three receivers miss it together.
	tb.Sites[0].Site.TailDown().SetLoss(&lbrm.FirstN{N: 1})
	tb.Send([]byte("bridge destroyed"))
	tb.Run(3 * time.Second)

	fmt.Printf("delivered to all %d receivers: %v\n",
		tb.TotalReceivers(), tb.EveryoneHas(2))
	fmt.Printf("NACKs that crossed the WAN: %d\n",
		tb.Sites[0].Secondary.Stats().NacksToPrimary)
	// Output:
	// delivered to all 6 receivers: true
	// NACKs that crossed the WAN: 1
}

// ExampleFixedHeartbeat contrasts the paper's two heartbeat schemes at the
// DIS operating point (terrain updates every two minutes).
func ExampleFixedHeartbeat() {
	variable := lbrm.DefaultHeartbeat
	fixed := lbrm.FixedHeartbeat(250 * time.Millisecond)
	_ = fixed
	// A sender created with `variable` emits 9 heartbeats per 120 s idle
	// period; with `fixed`, 479 — the paper's ~53× reduction (Figure 5).
	fmt.Println(variable.Backoff)
	// Output:
	// 2
}
