module lbrm

go 1.22
