//go:build !race

package lbrm_test

// raceEnabled reports whether this test binary was built with the race
// detector; see bench_race_test.go.
const raceEnabled = false
