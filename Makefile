GO ?= go

.PHONY: check lint vet build test allocgate perfgate cover chaos scenarios fuzzsmoke bench perf flight

# check is the pre-commit gate: static checks, the full suite under the
# race detector, the datapath allocation gates with a short benchtime
# pass over every micro-benchmark, the perf-regression gate against the
# committed baseline, the per-package coverage floors, the chaos seed
# matrix, and a short fuzz pass over the epoch-carrying wire codec and
# the metrics exposition encoder.
check: lint build test allocgate perfgate cover chaos fuzzsmoke

# lint is go vet plus staticcheck. staticcheck is not vendored and dev
# machines may be offline, so it runs only where the binary is already
# on PATH (CI installs it; see .github/workflows/ci.yml) and is skipped
# with a notice elsewhere — vet always runs.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not on PATH, skipping (CI runs it)"; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

allocgate:
	$(GO) test ./internal/perf/ -run 'TestDatapathZeroAlloc|TestRecoveryZeroAlloc|TestUDPLoopbackZeroAlloc' -count=1
	$(GO) test ./internal/perf/ -run '^$$' -bench . -benchmem -benchtime 10ms

# perfgate re-measures the zero-allocation invariants and the batched
# egress headline, failing if throughput drops below 80% of the
# committed BENCH_2.json baseline, then validates the committed sim-engine
# headline (BENCH_4.json: >= 5x the heap/sequential baseline at 10k sites)
# and re-measures the engine live on the 1k-site scenario (3x floor plus
# exact trace-hash equality between engines). Refresh the baselines with
# `make bench` (BENCH_2) and `go run ./cmd/lbrm-perf -sim` (BENCH_4).
perfgate:
	$(GO) run ./cmd/lbrm-perf -gate

# cover enforces per-package statement-coverage floors on the protocol
# endpoints, the logging servers, the wire codec and the observability
# layer — including the control-plane packages (series ring, health/SLO
# engine, fleet scraper). Floors sit below current coverage (core 87 /
# logger 79 / wire 86 / obs 93 / series 88 / health 92 / fleet 85 at the
# time of writing) so routine growth doesn't trip them, but an untested
# subsystem landing in one of these packages does.
COVER_FLOORS = ./internal/core:80 ./internal/logger:72 ./internal/wire:80 ./internal/obs:87 ./internal/obs/series:84 ./internal/obs/health:87 ./internal/obs/fleet:80 ./internal/vtime:85 ./internal/netsim:75

cover:
	@fail=0; \
	for spec in $(COVER_FLOORS); do \
	  pkg=$${spec%%:*}; floor=$${spec##*:}; \
	  pct=$$($(GO) test -count=1 -cover $$pkg | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
	  if [ -z "$$pct" ]; then echo "cover: FAIL $$pkg (no coverage output)"; fail=1; continue; fi; \
	  if [ "$$(awk -v p="$$pct" -v f="$$floor" 'BEGIN{print (p+0 >= f+0) ? 1 : 0}')" != 1 ]; then \
	    echo "cover: FAIL $$pkg at $$pct% (floor $$floor%)"; fail=1; \
	  else \
	    echo "cover: ok   $$pkg at $$pct% (floor $$floor%)"; \
	  fi; \
	done; exit $$fail

# chaos drives the deterministic fault-injection matrix under the race
# detector: fixed seeds, crash/partition/link-chaos schedules, end-to-end
# recovery invariants. A failure prints the seed and the fault schedule —
# reproduce any run with
#   go run ./cmd/lbrm-sim -chaos -seed N [-chaos-crash-primary] ...
chaos:
	$(GO) test -race ./internal/chaos/ -count=1

# scenarios is the adversarial scenario-matrix smoke: one pinned seed per
# class (flash-crowd, crying-baby, diurnal, mixed, broadcast), each run
# sequentially, in parallel, and in parallel+bulk under the race detector,
# with the three FNV trace hashes required to be identical and every
# class's seeded invariants enforced. Reproduce one class with
#   go run ./cmd/lbrm-sim -scenario crying-baby -seed N [-parallel -bulk]
scenarios:
	$(GO) test -race ./internal/chaos/ -run 'TestScenarioMatrix|TestScenarioFlashCrowdBackfill|TestScenarioCryingBabyContainment' -count=1

# fuzzsmoke runs a short coverage-guided pass over the codec surfaces:
# the wire codec (the surface that grew the primary-epoch, advance-record
# and quorum-ring fields), the quorum-ack watermark block specifically
# (variable-length replica watermarks + ring epoch fencing), the
# metrics/trace exposition encoder (no-panic + lossless JSON round-trip),
# and the Prometheus text exposition (line discipline + escaping under
# adversarial metric names and values). The seed corpora alone run in
# every `go test`; this target actually mutates.
fuzzsmoke:
	$(GO) test ./internal/wire/ -run '^$$' -fuzz FuzzUnmarshal -fuzztime 10s
	$(GO) test ./internal/wire/ -run '^$$' -fuzz FuzzQuorumAck -fuzztime 10s
	$(GO) test ./internal/obs/ -run '^$$' -fuzz FuzzExposition -fuzztime 10s
	$(GO) test ./internal/obs/ -run '^$$' -fuzz FuzzPromExposition -fuzztime 10s

# flight runs the chaos matrix with the recovery flight recorder's fleet
# timeline enabled, writing one JSONL flight log per seed into
# $(FLIGHT_DIR), then validates every log against the golden schema
# (internal/chaos/testdata/flight_schema.golden): parseable JSONL,
# monotonic sample times, and the end-of-run flight.* chain summary.
FLIGHT_DIR ?= flightlogs
FLIGHT_SEEDS ?= 1 2 3

flight:
	@mkdir -p $(FLIGHT_DIR)
	@for seed in $(FLIGHT_SEEDS); do \
	  echo "chaos seed $$seed → $(FLIGHT_DIR)/chaos-seed$$seed.jsonl"; \
	  $(GO) run ./cmd/lbrm-sim -chaos -seed $$seed -chaos-faults 8 \
	    -flight-log $(FLIGHT_DIR)/chaos-seed$$seed.jsonl || exit 1; \
	done
	$(GO) test ./internal/chaos/ -run TestFlightLogSchema -count=1 \
	  -flight-glob '$(abspath $(FLIGHT_DIR))/*.jsonl'

# bench re-measures the hot-datapath suite and rewrites the committed
# BENCH_2.json baseline (the perfgate reference point), then runs every
# other benchmark in the repo at full benchtime.
bench:
	$(GO) run ./cmd/lbrm-perf -o BENCH_2.json
	$(GO) test -run '^$$' -bench . -benchmem ./...

# perf re-measures the hot-datapath suite and rewrites BENCH_2.json
# without the full repo-wide benchmark sweep.
perf:
	$(GO) run ./cmd/lbrm-perf
