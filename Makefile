GO ?= go

.PHONY: check vet build test allocgate chaos bench perf

# check is the pre-commit gate: static checks, the full suite under the
# race detector, the datapath allocation gate with a short benchtime
# pass over every micro-benchmark, and the chaos seed matrix.
check: vet build test allocgate chaos

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

allocgate:
	$(GO) test ./internal/perf/ -run TestDatapathZeroAlloc -count=1
	$(GO) test ./internal/perf/ -run '^$$' -bench . -benchmem -benchtime 10ms

# chaos drives the deterministic fault-injection matrix under the race
# detector: fixed seeds, crash/partition/link-chaos schedules, end-to-end
# recovery invariants. A failure prints the seed and the fault schedule —
# reproduce any run with
#   go run ./cmd/lbrm-sim -chaos -seed N [-chaos-crash-primary] ...
chaos:
	$(GO) test -race ./internal/chaos/ -count=1

# bench runs every benchmark in the repo at full benchtime.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# perf re-measures the hot-datapath suite and rewrites BENCH_1.json.
perf:
	$(GO) run ./cmd/lbrm-perf
