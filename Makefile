GO ?= go

.PHONY: check vet build test allocgate bench perf

# check is the pre-commit gate: static checks, the full suite under the
# race detector, and the datapath allocation gate with a short benchtime
# pass over every micro-benchmark.
check: vet build test allocgate

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

allocgate:
	$(GO) test ./internal/perf/ -run TestDatapathZeroAlloc -count=1
	$(GO) test ./internal/perf/ -run '^$$' -bench . -benchmem -benchtime 10ms

# bench runs every benchmark in the repo at full benchtime.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# perf re-measures the hot-datapath suite and rewrites BENCH_1.json.
perf:
	$(GO) run ./cmd/lbrm-perf
