GO ?= go

.PHONY: check vet build test allocgate chaos fuzzsmoke bench perf

# check is the pre-commit gate: static checks, the full suite under the
# race detector, the datapath allocation gate with a short benchtime
# pass over every micro-benchmark, the chaos seed matrix, and a short
# fuzz pass over the epoch-carrying wire codec.
check: vet build test allocgate chaos fuzzsmoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

allocgate:
	$(GO) test ./internal/perf/ -run TestDatapathZeroAlloc -count=1
	$(GO) test ./internal/perf/ -run '^$$' -bench . -benchmem -benchtime 10ms

# chaos drives the deterministic fault-injection matrix under the race
# detector: fixed seeds, crash/partition/link-chaos schedules, end-to-end
# recovery invariants. A failure prints the seed and the fault schedule —
# reproduce any run with
#   go run ./cmd/lbrm-sim -chaos -seed N [-chaos-crash-primary] ...
chaos:
	$(GO) test -race ./internal/chaos/ -count=1

# fuzzsmoke runs a short coverage-guided pass over the wire codec — the
# surface that grew the primary-epoch and advance-record fields. The seed
# corpus alone runs in every `go test`; this target actually mutates.
fuzzsmoke:
	$(GO) test ./internal/wire/ -run '^$$' -fuzz FuzzUnmarshal -fuzztime 10s

# bench runs every benchmark in the repo at full benchtime.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# perf re-measures the hot-datapath suite and rewrites BENCH_1.json.
perf:
	$(GO) run ./cmd/lbrm-perf
