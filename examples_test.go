package lbrm_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example end to end (they all run inside
// the deterministic simulator, so they are fast and repeatable) and checks
// for the narrative landmarks that prove the protocol did its job.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs subprocesses")
	}
	cases := []struct {
		dir   string
		wants []string
	}{
		{"quickstart", []string{"← recovered", "every receiver has the update: true"}},
		{"terrain", []string{"destruction delivered to 6/6", "recovered"}},
		{"stockticker", []string{"re-multicast once", "delivered to 200/200"}},
		{"webcache", []string{"RETRANS:2.0:UPDATE", "RELOAD highlighted"}},
		{"filecache", []string{"whole cache invalidated (lease expiry)", "server back"}},
		{"factory", []string{"(recovered from log)", "transactions logged"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.dir, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./examples/"+tc.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("example failed: %v\n%s", err, out)
			}
			for _, want := range tc.wants {
				if !strings.Contains(string(out), want) {
					t.Errorf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
}
