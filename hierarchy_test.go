package lbrm_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"lbrm"
	"lbrm/internal/wire"
)

// TestHierarchyLosslessDelivery: a three-tier testbed (sites under
// regional loggers under the primary) delivers everything with zero
// recovery traffic, exactly like the flat deployment.
func TestHierarchyLosslessDelivery(t *testing.T) {
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed: 1, Regions: 2, Sites: 4, ReceiversPerSite: 2,
		Sender: lbrm.SenderConfig{Heartbeat: fastHB},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Regions) != 2 {
		t.Fatalf("regions = %d, want 2", len(tb.Regions))
	}
	for i, s := range tb.Sites {
		if s.Region != i%2 {
			t.Fatalf("site %d under region %d, want round-robin %d", i, s.Region, i%2)
		}
	}
	for i := 1; i <= 10; i++ {
		if _, err := tb.Send([]byte(fmt.Sprintf("update-%d", i))); err != nil {
			t.Fatal(err)
		}
		tb.Run(200 * time.Millisecond)
	}
	tb.Run(2 * time.Second)
	for seq := uint64(1); seq <= 10; seq++ {
		if !tb.EveryoneHas(seq) {
			t.Fatalf("seq %d delivered to %d/%d receivers",
				seq, tb.DeliveredCount(seq), tb.TotalReceivers())
		}
	}
	for _, reg := range tb.Regions {
		if st := reg.Logger.Stats(); st.NacksFromClients != 0 {
			t.Fatalf("regional recovery traffic on lossless run: %+v", st)
		}
	}
}

// TestHierarchyRegionalServesSiteLoss: a whole-site loss (tail-circuit
// drop takes out the site secondary too) is repaired by the region's
// logger; no recovery traffic reaches the backbone or the primary, and
// the site secondary's upward fetch is stamped with the regional's tier.
func TestHierarchyRegionalServesSiteLoss(t *testing.T) {
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed: 2, Regions: 2, Sites: 4, ReceiversPerSite: 3,
		Sender:    lbrm.SenderConfig{Heartbeat: fastHB},
		Secondary: lbrm.SecondaryConfig{NackDelay: 10 * time.Millisecond},
		Receiver:  lbrm.ReceiverConfig{NackDelay: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	var backboneNacks, fetchNacks int
	var fetchTiers []int
	tb.Net.SetTap(func(ev lbrm.TapEvent) {
		var p wire.Packet
		if p.Unmarshal(ev.Data) != nil || p.Type != wire.TypeNack {
			return
		}
		name := ev.Link.Name()
		if strings.Contains(name, "region1/up") || strings.Contains(name, "primary/down") {
			backboneNacks++
		}
		if strings.Contains(name, "region1/logger/down") {
			fetchNacks++
			fetchTiers = append(fetchTiers, p.Tier())
		}
	})

	tb.Send([]byte("one"))
	tb.Run(200 * time.Millisecond)
	// site1 sits under region1; drop the next packet on its tail circuit
	// so every host in the site — secondary included — misses it.
	tb.Sites[0].Site.TailDown().SetLoss(&lbrm.FirstN{N: 1})
	tb.Send([]byte("two"))
	tb.Run(200 * time.Millisecond)
	tb.Send([]byte("three"))
	tb.Run(3 * time.Second)

	for seq := uint64(1); seq <= 3; seq++ {
		if !tb.EveryoneHas(seq) {
			t.Fatalf("seq %d delivered to %d/%d",
				seq, tb.DeliveredCount(seq), tb.TotalReceivers())
		}
	}
	if backboneNacks != 0 {
		t.Fatalf("%d NACKs escaped to the backbone; the regional tier should have absorbed them", backboneNacks)
	}
	if fetchNacks == 0 {
		t.Fatal("site secondary never fetched from its regional parent")
	}
	for _, tier := range fetchTiers {
		if tier != 1 {
			t.Fatalf("fetch NACK tiers = %v, want all stamped 1 (regional)", fetchTiers)
		}
	}
	reg := tb.Regions[0].Logger.Stats()
	if reg.NacksFromClients == 0 || reg.RetransUnicast+reg.Remulticasts == 0 {
		t.Fatalf("regional stats = %+v, want it to have served the site", reg)
	}
	if pri := tb.Primary.Stats(); pri.NacksFromClients != 0 {
		t.Fatalf("primary served %d NACKs, want 0 (regional absorbed the loss)", pri.NacksFromClients)
	}
}
